//! The `Check` trait, the verification context, the rule registry and the
//! driver — the `OBCS1xx` counterpart of `obcs-lint`'s `Lint`/`LintContext`
//! machinery.

use std::cell::OnceCell;

use obcs_core::ConversationSpace;
use obcs_kb::KnowledgeBase;
use obcs_lint::{Diagnostic, DiagnosticSet, LintContext};
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};

use crate::flow::{explore, FlowExploration};

/// A representative instance value for a concept, if the space or KB can
/// supply one: the first entity example, else the first distinct text
/// value of the concept's mapped label column. `None` means no user input
/// could ever fill a slot of this concept — the fact behind both the
/// elicitation-livelock flow check (OBCS101) and the static
/// slot-fillability bind check (OBCS111).
pub fn representative_value(lint: &LintContext<'_>, concept: ConceptId) -> Option<String> {
    if let Some(def) = lint.space.entities.iter().find(|e| e.concept == concept) {
        if let Some(example) = def.examples.first() {
            return Some(example.clone());
        }
    }
    let table = lint.mapping.table(concept)?;
    let label = lint.mapping.label(concept)?;
    lint.kb.distinct_values(table, label).ok()?.iter().find_map(|v| v.as_text().map(str::to_string))
}

/// Tunable bounds of the verification pass.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Abstract-state cap for the dialogue-flow exploration. When the
    /// reachable state space exceeds this, exploration stops and
    /// `OBCS105` reports the verification as incomplete.
    pub max_states: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig { max_states: 50_000 }
    }
}

/// Everything the checks inspect: the lint context (artifact chain plus
/// derived logic table and dialogue tree) and the lazily computed
/// dialogue-flow exploration, shared across flow checks so the state
/// machine is explored once per run.
pub struct VerifyContext<'a> {
    pub lint: LintContext<'a>,
    flow: OnceCell<FlowExploration>,
}

impl<'a> VerifyContext<'a> {
    pub fn new(
        onto: &'a Ontology,
        kb: &'a KnowledgeBase,
        mapping: &'a OntologyMapping,
        space: &'a ConversationSpace,
    ) -> Self {
        VerifyContext { lint: LintContext::new(onto, kb, mapping, space), flow: OnceCell::new() }
    }

    /// The dialogue-flow exploration, computed on first use with the
    /// given config (subsequent calls reuse the first result).
    pub fn flow(&self, cfg: &VerifyConfig) -> &FlowExploration {
        self.flow.get_or_init(|| explore(&self.lint, cfg))
    }

    /// See [`representative_value`].
    pub fn representative_value(&self, concept: ConceptId) -> Option<String> {
        representative_value(&self.lint, concept)
    }
}

/// One verification rule. A rule owns one or more stable `OBCS1xx` codes;
/// `codes` documents them and `run` appends any findings to `out`.
pub trait Check {
    /// Short kebab-case rule name, e.g. `intent-reachability`.
    fn name(&self) -> &'static str;
    /// The stable codes this rule can emit.
    fn codes(&self) -> &'static [&'static str];
    /// One-line description for `spaceverify --rules`.
    fn description(&self) -> &'static str;
    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>);
}

/// The full registry, in code order.
pub fn all_checks() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(crate::flow::IntentReachability),
        Box::new(crate::flow::ElicitationLiveness),
        Box::new(crate::flow::ProposalEdges),
        Box::new(crate::flow::DeadLogicRows),
        Box::new(crate::flow::TreeNodeReachability),
        Box::new(crate::flow::ExplorationBound),
        Box::new(crate::bindcheck::TemplateBindCheck),
        Box::new(crate::bindcheck::SlotFillability),
        Box::new(crate::bindcheck::ProjectionCollisions),
        Box::new(crate::bindcheck::PredicateTypes),
        Box::new(crate::bindcheck::PatternCoverage),
        Box::new(crate::consistency::TrainingLogicConsistency),
        Box::new(crate::consistency::PatternTemplateConsistency),
        Box::new(crate::consistency::JoinFkConsistency),
    ]
}

/// Runs every registered check and returns the sorted diagnostic set.
pub fn run_all(ctx: &VerifyContext<'_>, cfg: &VerifyConfig) -> DiagnosticSet {
    let mut out = Vec::new();
    for check in all_checks() {
        check.run(ctx, cfg, &mut out);
    }
    let mut set = DiagnosticSet { diagnostics: out };
    set.sort();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_codes_are_unique_and_in_the_1xx_range() {
        let mut seen = HashSet::new();
        for check in all_checks() {
            assert!(!check.codes().is_empty(), "{} declares no codes", check.name());
            for code in check.codes() {
                assert!(code.starts_with("OBCS1") && code.len() == 7, "malformed code {code}");
                assert!(seen.insert(*code), "code {code} registered twice");
            }
        }
    }
}
