//! Shared synthetic fixture for the verify tests: a minimal hand-built
//! artifact chain (ontology, KB, mapping, space) that verifies clean,
//! plus variants that each trip one `OBCS1xx` rule.
//!
//! The shape mirrors the lint crate's fixture (Drug / Precaution /
//! Indication with one query intent and one entity-only intent) so both
//! diagnostic layers are exercised against the same minimal world.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use obcs_core::concepts::{CompletionMetadata, DependentConcept, DependentSemantics};
use obcs_core::entities::{EntityDef, EntityKind, SynonymDict};
use obcs_core::intents::{Intent, IntentGoal, IntentId};
use obcs_core::patterns::{PatternKind, QueryPattern};
use obcs_core::templates::{IntentTemplates, LabeledTemplate};
use obcs_core::training::{ExampleSource, TrainingExample};
use obcs_core::ConversationSpace;
use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use obcs_nlq::{OntologyMapping, QueryTemplate};
use obcs_ontology::{ConceptId, Ontology, OntologyBuilder};

pub struct Fixture {
    pub onto: Ontology,
    pub kb: KnowledgeBase,
    pub mapping: OntologyMapping,
    pub space: ConversationSpace,
}

impl Fixture {
    pub fn drug(&self) -> ConceptId {
        self.onto.concept_id("Drug").expect("fixture concept")
    }

    pub fn precaution(&self) -> ConceptId {
        self.onto.concept_id("Precaution").expect("fixture concept")
    }
}

const CLEAN_SQL: &str = "SELECT precaution.text FROM precaution \
                         JOIN drug ON precaution.drug_id = drug.id \
                         WHERE drug.name = '<@Drug>'";

/// Knobs for the fixture builder; `Default` produces the clean baseline.
pub struct Options {
    /// Training examples for the query intent (drop → OBCS100/OBCS103).
    pub train_query_intent: bool,
    /// Mark `Drug` as a key concept (controls the proposal branch).
    pub key_concept: bool,
    /// Give `Drug` entity examples and KB rows (drop both → the concept
    /// is unprovidable: OBCS101/OBCS111).
    pub drug_providable: bool,
    /// Include the entity-only `DRUG_GENERAL` intent and its training.
    pub entity_only_intent: bool,
    /// Template SQL (override to trip OBCS110/OBCS112/OBCS113/OBCS122).
    pub template_sql: &'static str,
    /// Template slot concepts, by ontology name.
    pub template_params: &'static [&'static str],
    /// Template topic (mismatch the pattern's → OBCS121).
    pub template_topic: &'static str,
    /// Drop the template without a skip entry (→ OBCS114).
    pub drop_template: bool,
    /// Table the `precaution.drug_id` FK references (a name other than
    /// `drug` leaves the template join unbacked → OBCS122).
    pub fk_target: &'static str,
    /// Add a training example for an intent the space does not define
    /// (→ OBCS120).
    pub dangling_training: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            train_query_intent: true,
            key_concept: true,
            drug_providable: true,
            entity_only_intent: true,
            template_sql: CLEAN_SQL,
            template_params: &["Drug"],
            template_topic: "Precautions",
            drop_template: false,
            fk_target: "drug",
            dangling_training: false,
        }
    }
}

fn build_onto() -> Ontology {
    OntologyBuilder::new("fixture")
        .concept("Drug")
        .concept("Precaution")
        .concept("Indication")
        .data("Drug", &["name"])
        .data("Precaution", &["text"])
        .data("Indication", &["name"])
        .relation("hasPrecaution", "Drug", "Precaution")
        .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
        .build()
        .expect("fixture ontology")
}

fn build_kb(opts: &Options) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("id"),
    )
    .expect("create drug");
    kb.create_table(
        TableSchema::new("precaution")
            .column("id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("text", ColumnType::Text)
            .primary_key("id")
            .foreign_key("drug_id", opts.fk_target, "id"),
    )
    .expect("create precaution");
    kb.create_table(
        TableSchema::new("indication")
            .column("id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("id")
            .foreign_key("drug_id", "drug", "id"),
    )
    .expect("create indication");

    if opts.drug_providable {
        kb.insert("drug", vec![Value::Int(1), Value::text("aspirin")]).expect("insert drug");
        kb.insert("drug", vec![Value::Int(2), Value::text("ibuprofen")]).expect("insert drug");
        if opts.fk_target == "drug" {
            kb.insert(
                "precaution",
                vec![Value::Int(1), Value::Int(1), Value::text("avoid alcohol")],
            )
            .expect("insert precaution");
        }
        kb.insert("indication", vec![Value::Int(1), Value::Int(1), Value::text("headache")])
            .expect("insert indication");
    }
    kb
}

fn build_space(onto: &Ontology, opts: &Options) -> ConversationSpace {
    let drug = onto.concept_id("Drug").expect("fixture concept");
    let precaution = onto.concept_id("Precaution").expect("fixture concept");
    let lookup = QueryPattern {
        kind: PatternKind::Lookup,
        focus: precaution,
        required: vec![drug],
        intermediates: vec![],
        relation_phrase: None,
        topic: "Precautions".to_string(),
        derived_from: None,
    };
    let query_intent = Intent {
        id: IntentId(0),
        name: "Precautions of Drug".to_string(),
        goal: IntentGoal::Query(vec![lookup]),
        required_entities: vec![drug],
        optional_entities: vec![],
        response_template: "Here are the {topic} for {entities}:\n{results}".to_string(),
    };
    let entity_only = Intent {
        id: IntentId(1),
        name: "DRUG_GENERAL".to_string(),
        goal: IntentGoal::EntityOnly(drug),
        required_entities: vec![],
        optional_entities: vec![],
        response_template: String::new(),
    };

    let mut training: Vec<TrainingExample> = Vec::new();
    if opts.train_query_intent {
        for text in ["show me the precautions for aspirin", "what precautions does ibuprofen have"]
        {
            training.push(TrainingExample {
                text: text.to_string(),
                intent: IntentId(0),
                source: ExampleSource::Generated,
            });
        }
    }
    if opts.entity_only_intent {
        for text in ["aspirin", "tell me about ibuprofen"] {
            training.push(TrainingExample {
                text: text.to_string(),
                intent: IntentId(1),
                source: ExampleSource::Generated,
            });
        }
    }
    if opts.dangling_training {
        training.push(TrainingExample {
            text: "show me the forbidden topic".to_string(),
            intent: IntentId(9),
            source: ExampleSource::Generated,
        });
    }

    let mut intents = vec![query_intent];
    if opts.entity_only_intent {
        intents.push(entity_only);
    }

    let mut entities = vec![EntityDef {
        concept: precaution,
        name: "Precaution".to_string(),
        kind: EntityKind::Concept,
        examples: vec!["avoid alcohol".to_string()],
        synonyms: vec![],
    }];
    if opts.drug_providable {
        entities.push(EntityDef {
            concept: drug,
            name: "Drug".to_string(),
            kind: EntityKind::Concept,
            examples: vec!["aspirin".to_string(), "ibuprofen".to_string()],
            synonyms: vec![],
        });
    }

    let dependents = vec![DependentConcept {
        concept: precaution,
        of_key: drug,
        semantics: DependentSemantics::Plain,
    }];
    let completion = CompletionMetadata::build(&dependents);

    let params: Vec<ConceptId> =
        opts.template_params.iter().map(|n| onto.concept_id(n).expect("param concept")).collect();
    let templates = if opts.drop_template {
        vec![]
    } else {
        vec![IntentTemplates {
            intent: IntentId(0),
            templates: vec![LabeledTemplate {
                topic: opts.template_topic.to_string(),
                template: QueryTemplate::new(opts.template_sql.to_string(), params, onto),
            }],
        }]
    };

    ConversationSpace {
        ontology_name: "fixture".to_string(),
        key_concepts: if opts.key_concept { vec![drug] } else { vec![] },
        dependents,
        intents,
        training,
        entities,
        synonyms: SynonymDict::new(),
        templates,
        completion,
        skipped_templates: vec![],
    }
}

pub fn fixture_with(opts: Options) -> Fixture {
    let onto = build_onto();
    let kb = build_kb(&opts);
    let mapping = OntologyMapping::infer(&onto, &kb);
    let space = build_space(&onto, &opts);
    Fixture { onto, kb, mapping, space }
}

/// The clean baseline fixture.
pub fn fixture() -> Fixture {
    fixture_with(Options::default())
}
