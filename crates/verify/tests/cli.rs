//! Binary-level regression tests: run the real `spaceverify` executable
//! against the committed MDX artifacts and against mutated copies,
//! asserting the exact exit status and diagnostic codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use obcs_lint::JsonReport;

fn artifacts_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts")
}

/// A scratch directory unique to this test process, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("spaceverify-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Copies the committed MDX pair into the scratch dir, applying `mutate`
/// to the space JSON text.
fn staged_mdx(scratch: &Scratch, mutate: impl FnOnce(String) -> String) -> PathBuf {
    let space = std::fs::read_to_string(artifacts_dir().join("mdx_space.json"))
        .expect("committed mdx_space.json");
    let kb = std::fs::read_to_string(artifacts_dir().join("mdx_kb.json"))
        .expect("committed mdx_kb.json");
    let space_path = scratch.path("mdx_space.json");
    std::fs::write(&space_path, mutate(space)).expect("write mutated space");
    std::fs::write(scratch.path("mdx_kb.json"), kb).expect("write kb");
    space_path
}

fn run_spaceverify(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spaceverify")).args(args).output().expect("spaceverify runs")
}

fn codes_of(report: &JsonReport) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn committed_mdx_space_verifies_clean_and_json_round_trips() {
    let out = run_spaceverify(&[
        artifacts_dir().join("mdx_space.json").to_str().expect("utf8 path"),
        "--deny-warnings",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "committed artifacts must verify clean: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 report");
    let report = JsonReport::from_json(&stdout).expect("parsable JSON report");
    assert_eq!(report.tool, "spaceverify");
    assert_eq!(report.errors, 0);
    assert_eq!(report.warnings, 0);
    // Round trip: re-serialize and re-parse to the same envelope counts.
    let again = JsonReport::from_json(&report.to_json()).expect("round trip");
    assert_eq!(again.errors, report.errors);
    assert_eq!(again.diagnostics.len(), report.diagnostics.len());
}

#[test]
fn dropped_intent_fails_verification_with_obcs120() {
    // "Drop a logic-table row": removing an intent from the space removes
    // its derived logic row while its training examples remain.
    let scratch = Scratch::new("drop-row");
    let space_path = staged_mdx(&scratch, |text| {
        let mut space: obcs_core::ConversationSpace =
            serde_json::from_str(&text).expect("space parses");
        let before = space.intents.len();
        space.intents.retain(|i| i.name != "Precautions of Drug");
        assert_eq!(space.intents.len(), before - 1, "fixture intent not found");
        serde_json::to_string(&space).expect("re-serialize")
    });

    let out = run_spaceverify(&[
        space_path.to_str().expect("utf8 path"),
        "--deny-warnings",
        "--json",
        "--max-states",
        "5000",
    ]);
    assert!(!out.status.success(), "mutated space must fail the gate");
    assert_eq!(out.status.code(), Some(1), "gate failure, not usage error");
    let report =
        JsonReport::from_json(&String::from_utf8_lossy(&out.stdout)).expect("parsable JSON report");
    assert!(codes_of(&report).contains(&"OBCS120"), "expected OBCS120 in {:?}", codes_of(&report));
}

#[test]
fn retyped_slot_fails_verification_with_obcs113() {
    // "Retype a slot": move a template's filter from the drug's text name
    // to its integer key; the slot's text instantiation can never match.
    let scratch = Scratch::new("retype-slot");
    let space_path = staged_mdx(&scratch, |text| {
        let needle = "oDrug.name = '<@Drug>'";
        assert!(text.contains(needle), "expected template filter in committed space");
        text.replacen(needle, "oDrug.drug_id = '<@Drug>'", 1)
    });

    let out = run_spaceverify(&[
        space_path.to_str().expect("utf8 path"),
        "--deny-warnings",
        "--json",
        "--max-states",
        "5000",
    ]);
    assert!(!out.status.success(), "mutated space must fail the gate");
    assert_eq!(out.status.code(), Some(1), "gate failure, not usage error");
    let report =
        JsonReport::from_json(&String::from_utf8_lossy(&out.stdout)).expect("parsable JSON report");
    assert!(codes_of(&report).contains(&"OBCS113"), "expected OBCS113 in {:?}", codes_of(&report));
}

#[test]
fn usage_errors_exit_2() {
    let out = run_spaceverify(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_spaceverify(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_spaceverify(&["/nonexistent/space.json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn rules_listing_names_every_code_range() {
    let out = run_spaceverify(&["--rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for code in ["OBCS100", "OBCS105", "OBCS110", "OBCS114", "OBCS120", "OBCS122"] {
        assert!(text.contains(code), "rules listing missing {code}:\n{text}");
    }
}
