//! Golden tests: for every `OBCS1xx` rule, a minimal space that trips it
//! and the repaired space that passes it.

mod common;

use common::{fixture, fixture_with, Options};
use obcs_core::IntentId;
use obcs_lint::DiagnosticSet;
use obcs_verify::{run_all, VerifyConfig, VerifyContext};

fn verify(f: &common::Fixture) -> DiagnosticSet {
    let ctx = VerifyContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    run_all(&ctx, &VerifyConfig::default())
}

#[test]
fn baseline_fixture_verifies_clean() {
    let f = fixture();
    let report = verify(&f);
    assert!(report.is_empty(), "clean fixture should verify clean:\n{}", report.render_text());
}

#[test]
fn bind_checking_is_index_invariant() {
    // The bind-checker drives the same bind phase the planner hangs
    // access-path selection off (DESIGN.md §14); secondary indexes are
    // an execution concern and must not change any binding verdict.
    let mut f = fixture();
    assert!(f.kb.auto_index() > 0, "fixture KB should accept some indexes");
    let report = verify(&f);
    assert!(report.is_empty(), "indexed fixture should verify clean:\n{}", report.render_text());
}

// ---- flow: OBCS100–OBCS105 ----

#[test]
fn obcs100_untrained_unproposed_intent_is_unreachable() {
    let f = fixture_with(Options {
        train_query_intent: false,
        key_concept: false, // no proposal path either
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS100"), "expected OBCS100:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS100"));
}

#[test]
fn obcs100_intent_reachable_through_proposals_alone() {
    // Untrained but proposable: the entity-only path must count as
    // reachability, so the repaired space only needs the key concept.
    let f = fixture_with(Options { train_query_intent: false, ..Options::default() });
    let report = verify(&f);
    assert!(!report.has_code("OBCS100"), "proposal path fulfills:\n{}", report.render_text());
}

#[test]
fn obcs101_unprovidable_slot_livelocks_elicitation() {
    let f = fixture_with(Options {
        drug_providable: false,
        entity_only_intent: false,
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS101"), "expected OBCS101:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS101"));
}

#[test]
fn obcs102_proposal_accept_falls_back_without_logic_row() {
    let f = fixture();
    let ctx = VerifyContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    // Drop the serving tree's logic row for the proposed intent: `yes`
    // now falls back instead of slot-filling.
    let mut ctx = ctx;
    ctx.lint.tree.logic.rows.retain(|r| r.intent != IntentId(0));
    let report = run_all(&ctx, &VerifyConfig::default());
    assert!(report.has_code("OBCS102"), "expected OBCS102:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS102"));
}

#[test]
fn obcs103_dead_logic_row_for_untrained_intent() {
    let f = fixture_with(Options {
        train_query_intent: false,
        key_concept: false,
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS103"), "expected OBCS103:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS103"));
}

#[test]
fn obcs104_proposal_branch_unreachable_without_instances() {
    // Proposals for Drug exist, but nothing can utter a drug (no examples,
    // no rows, no entity-only intent) so the branch never fires.
    let f = fixture_with(Options {
        drug_providable: false,
        entity_only_intent: false,
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS104"), "expected OBCS104:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS104"));
}

#[test]
fn obcs105_truncated_exploration_is_reported() {
    let f = fixture();
    let ctx = VerifyContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    let report = run_all(&ctx, &VerifyConfig { max_states: 1 });
    assert!(report.has_code("OBCS105"), "expected OBCS105:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS105"));
}

// ---- bindcheck: OBCS110–OBCS114 ----

#[test]
fn obcs110_template_naming_missing_column_fails_bind() {
    let f = fixture_with(Options {
        template_sql: "SELECT precaution.warnings FROM precaution \
                       JOIN drug ON precaution.drug_id = drug.id \
                       WHERE drug.name = '<@Drug>'",
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS110"), "expected OBCS110:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS110"));
}

#[test]
fn obcs111_unprovidable_template_slot() {
    let f = fixture_with(Options {
        drug_providable: false,
        entity_only_intent: false,
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS111"), "expected OBCS111:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS111"));
}

#[test]
fn obcs112_duplicate_projection_names_collide() {
    let f = fixture_with(Options {
        template_sql: "SELECT text, text FROM precaution \
                       JOIN drug ON precaution.drug_id = drug.id \
                       WHERE drug.name = '<@Drug>'",
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS112"), "expected OBCS112:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS112"));
}

#[test]
fn obcs113_slot_compared_against_int_column() {
    // The "retyped slot": the filter moved from the text label to the
    // integer key, so no instantiation can ever match.
    let f = fixture_with(Options {
        template_sql: "SELECT precaution.text FROM precaution \
                       JOIN drug ON precaution.drug_id = drug.id \
                       WHERE drug.id = '<@Drug>'",
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS113"), "expected OBCS113:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS113"));
}

#[test]
fn obcs114_pattern_without_template_or_skip() {
    let f = fixture_with(Options { drop_template: true, ..Options::default() });
    let report = verify(&f);
    assert!(report.has_code("OBCS114"), "expected OBCS114:\n{}", report.render_text());

    // Repaired: the same hole with a recorded skip reason passes.
    let mut f = fixture_with(Options { drop_template: true, ..Options::default() });
    f.space.skipped_templates.push((
        IntentId(0),
        "Precautions".to_string(),
        "no mappable projection".to_string(),
    ));
    let report = verify(&f);
    assert!(!report.has_code("OBCS114"), "skip entry should repair:\n{}", report.render_text());
}

// ---- consistency: OBCS120–OBCS122 ----

#[test]
fn obcs120_training_example_for_unknown_intent() {
    let f = fixture_with(Options { dangling_training: true, ..Options::default() });
    let report = verify(&f);
    assert!(report.has_code("OBCS120"), "expected OBCS120:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS120"));
}

#[test]
fn obcs120_training_intent_without_logic_row() {
    let f = fixture();
    let mut ctx = VerifyContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    ctx.lint.logic.rows.retain(|r| r.intent != IntentId(0));
    let report = run_all(&ctx, &VerifyConfig::default());
    assert!(report.has_code("OBCS120"), "expected OBCS120:\n{}", report.render_text());
}

#[test]
fn obcs121_template_topic_matches_no_pattern() {
    let f = fixture_with(Options { template_topic: "Warnings", ..Options::default() });
    let report = verify(&f);
    assert!(report.has_code("OBCS121"), "expected OBCS121:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS121"));
}

#[test]
fn obcs121_template_slot_not_produced_by_patterns() {
    // The slot concept swapped to Indication, which no pattern of the
    // intent requires — the dialogue would never elicit it.
    let f = fixture_with(Options {
        template_sql: "SELECT precaution.text FROM precaution \
                       JOIN drug ON precaution.drug_id = drug.id \
                       WHERE drug.name = '<@Indication>'",
        template_params: &["Indication"],
        ..Options::default()
    });
    let report = verify(&f);
    assert!(report.has_code("OBCS121"), "expected OBCS121:\n{}", report.render_text());
}

#[test]
fn obcs122_join_not_backed_by_declared_fk() {
    let f = fixture_with(Options { fk_target: "droog", ..Options::default() });
    let report = verify(&f);
    assert!(report.has_code("OBCS122"), "expected OBCS122:\n{}", report.render_text());
    assert!(!verify(&fixture()).has_code("OBCS122"));
}
