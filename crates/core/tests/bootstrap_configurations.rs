//! Bootstrap-configuration tests: the pipeline must behave sensibly across
//! the knob space (cuts, centrality measures, hop limits, training sizes).

use obcs_core::concepts::KeyConceptConfig;
use obcs_core::testutil::fig2_fixture;
use obcs_core::training::TrainingGenConfig;
use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
use obcs_ontology::centrality::CentralityMeasure;
use obcs_ontology::segregation::Cut;

fn space_with(config: BootstrapConfig) -> obcs_core::ConversationSpace {
    let (onto, kb, mapping) = fig2_fixture();
    bootstrap(&onto, &kb, &mapping, config, &SmeFeedback::new())
}

#[test]
fn every_centrality_measure_yields_a_usable_space() {
    for measure in
        [CentralityMeasure::Degree, CentralityMeasure::PageRank, CentralityMeasure::Betweenness]
    {
        let space = space_with(BootstrapConfig {
            key_concepts: KeyConceptConfig { measure, ..Default::default() },
            ..Default::default()
        });
        let inv = space.inventory();
        assert!(inv.lookup_intents >= 3, "{measure:?}: lookup intents {}", inv.lookup_intents);
        assert!(inv.training_examples > 0, "{measure:?}");
    }
}

#[test]
fn top_k_cut_bounds_the_key_set() {
    let space = space_with(BootstrapConfig {
        key_concepts: KeyConceptConfig { cut: Cut::TopK(1), ..Default::default() },
        ..Default::default()
    });
    assert_eq!(space.key_concepts.len(), 1);
    // One key concept → no relationship intents between key pairs.
    assert_eq!(space.inventory().relationship_intents, 0);
}

#[test]
fn indirect_hops_zero_removes_indirect_patterns() {
    let with = space_with(BootstrapConfig { max_indirect_hops: 2, ..Default::default() });
    let without = space_with(BootstrapConfig { max_indirect_hops: 1, ..Default::default() });
    assert!(
        with.inventory().relationship_intents > without.inventory().relationship_intents,
        "indirect patterns need 2 hops: {} vs {}",
        with.inventory().relationship_intents,
        without.inventory().relationship_intents
    );
}

#[test]
fn training_volume_scales_with_config() {
    let small = space_with(BootstrapConfig {
        training: TrainingGenConfig { examples_per_pattern: 4, ..Default::default() },
        ..Default::default()
    });
    let large = space_with(BootstrapConfig {
        training: TrainingGenConfig { examples_per_pattern: 24, ..Default::default() },
        ..Default::default()
    });
    assert!(
        large.inventory().training_examples > small.inventory().training_examples * 2,
        "{} vs {}",
        large.inventory().training_examples,
        small.inventory().training_examples
    );
}

#[test]
fn different_seeds_differ_only_in_training_text() {
    let (onto, kb, mapping) = fig2_fixture();
    let a = bootstrap(
        &onto,
        &kb,
        &mapping,
        BootstrapConfig {
            training: TrainingGenConfig { seed: 1, ..Default::default() },
            ..Default::default()
        },
        &SmeFeedback::new(),
    );
    let b = bootstrap(
        &onto,
        &kb,
        &mapping,
        BootstrapConfig {
            training: TrainingGenConfig { seed: 2, ..Default::default() },
            ..Default::default()
        },
        &SmeFeedback::new(),
    );
    // Structure identical…
    assert_eq!(a.intents.len(), b.intents.len());
    assert_eq!(a.key_concepts, b.key_concepts);
    assert_eq!(a.templates.len(), b.templates.len());
    // …text sampling differs.
    let ta: Vec<&str> = a.training.iter().map(|e| e.text.as_str()).collect();
    let tb: Vec<&str> = b.training.iter().map(|e| e.text.as_str()).collect();
    assert_ne!(ta, tb);
}

#[test]
fn skipped_templates_are_reported_not_silently_dropped() {
    let space = space_with(BootstrapConfig::default());
    // The fixture's union members (ContraIndication, BlackBoxWarning) have
    // tables, so nothing should be skipped there; the isA children of
    // DrugInteraction have no tables → reported.
    for (intent, topic, reason) in &space.skipped_templates {
        assert!(space.intent(*intent).is_some());
        assert!(!topic.is_empty());
        assert!(!reason.is_empty());
    }
}
