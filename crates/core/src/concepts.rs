//! Key- and dependent-concept identification (paper §4.2.1).
//!
//! Key concepts "can stand on their own and usually represent the domain
//! entities that a common user would be interested in" — identified by a
//! centrality analysis of the ontology graph followed by statistical
//! segregation of the ranking. Dependent concepts are immediate neighbours
//! of a key concept that are not key concepts themselves and whose instance
//! data behaves like a categorical attribute; they describe the key concept
//! (e.g. `Precaution` for `Drug`).

use obcs_kb::stats::{table_is_categorical, CategoricalPolicy};
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::centrality::{centrality, CentralityMeasure};
use obcs_ontology::segregation::{segregate, Cut};
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

/// Configuration for key-concept identification.
#[derive(Debug, Clone, Copy)]
pub struct KeyConceptConfig {
    pub measure: CentralityMeasure,
    pub cut: Cut,
    /// Require key concepts to be *nameable* — their instances carry a
    /// proper name column (`name`/`title`/`label`) users can refer to them
    /// by. Dependent concepts typically only have free-text descriptions.
    /// Disable for the ablation bench.
    pub require_nameable: bool,
}

impl Default for KeyConceptConfig {
    fn default() -> Self {
        KeyConceptConfig {
            measure: CentralityMeasure::Degree,
            cut: Cut::LargestGap { min: 2, max: 12 },
            require_nameable: true,
        }
    }
}

/// The role assigned to a concept by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConceptRole {
    Key,
    Dependent,
    Other,
}

/// Special semantics a dependent concept may carry (paper Fig. 2 legend).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DependentSemantics {
    /// A plain dependent concept.
    Plain,
    /// A union parent: queries are augmented with one pattern per member.
    Union(Vec<ConceptId>),
    /// An inheritance parent: augmented with one pattern per child.
    Inheritance(Vec<ConceptId>),
}

/// A dependent concept attached to one key concept.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependentConcept {
    pub concept: ConceptId,
    /// The key concept this one describes.
    pub of_key: ConceptId,
    pub semantics: DependentSemantics,
}

/// Identifies key concepts: centrality ranking over eligible candidates,
/// then statistical segregation of that ranking.
///
/// Eligibility (the "stand on their own" test of the paper):
/// * participates in at least one domain relationship,
/// * is not a union/inheritance parent or member — those are dependent
///   concepts with special semantics (Fig. 2 legend) and surface through
///   pattern augmentation,
/// * when `require_nameable` is set, its instances carry a proper name
///   column in the KB.
pub fn identify_key_concepts(
    onto: &Ontology,
    mapping: &OntologyMapping,
    config: KeyConceptConfig,
) -> Vec<ConceptId> {
    let scored = centrality(onto, config.measure);
    let eligible: Vec<_> = scored
        .into_iter()
        .filter(|s| {
            let c = s.concept;
            let in_hierarchy = onto.neighbors(c).any(|(_, op)| op.kind.is_hierarchical());
            let has_domain_edges = onto.neighbors(c).any(|(_, op)| !op.kind.is_hierarchical());
            has_domain_edges
                && !in_hierarchy
                && (!config.require_nameable || mapping.is_nameable(c))
        })
        .collect();
    segregate(&eligible, config.cut)
}

/// Identifies the dependent concepts of each key concept: immediate
/// neighbours over domain relationships that are not key concepts
/// themselves and whose instance data is categorical (or that are abstract
/// hierarchy parents, which are kept for augmentation).
pub fn identify_dependent_concepts(
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    key_concepts: &[ConceptId],
    policy: CategoricalPolicy,
) -> Vec<DependentConcept> {
    let mut out = Vec::new();
    for &key in key_concepts {
        let mut neighbors: Vec<ConceptId> = onto
            .neighbors(key)
            .filter(|(_, op)| !op.kind.is_hierarchical())
            .map(|(c, _)| c)
            .filter(|c| *c != key && !key_concepts.contains(c))
            .collect();
        neighbors.sort();
        neighbors.dedup();
        for n in neighbors {
            let semantics = dependent_semantics(onto, n);
            let keep = match &semantics {
                // Abstract parents qualify through their members.
                DependentSemantics::Union(_) | DependentSemantics::Inheritance(_) => true,
                DependentSemantics::Plain => match mapping.table(n) {
                    Some(table) => {
                        table_is_categorical(kb, table, policy).unwrap_or(false)
                            || !kb.table(table).map(|t| t.is_empty()).unwrap_or(true)
                    }
                    None => false,
                },
            };
            if keep {
                out.push(DependentConcept { concept: n, of_key: key, semantics });
            }
        }
    }
    out
}

/// Detects union/inheritance semantics of a concept.
pub fn dependent_semantics(onto: &Ontology, concept: ConceptId) -> DependentSemantics {
    let members = onto.union_members(concept);
    if !members.is_empty() {
        return DependentSemantics::Union(members);
    }
    let children = onto.is_a_children(concept);
    if !children.is_empty() {
        return DependentSemantics::Inheritance(children);
    }
    DependentSemantics::Plain
}

/// Query-completion metadata (paper §4.2.1, end): for each key concept the
/// dependents that can complete a partial query, and vice versa.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompletionMetadata {
    /// key concept → its dependent concepts.
    pub dependents_of_key: Vec<(ConceptId, Vec<ConceptId>)>,
    /// dependent concept → the key concepts it describes.
    pub keys_of_dependent: Vec<(ConceptId, Vec<ConceptId>)>,
}

impl CompletionMetadata {
    pub fn build(dependents: &[DependentConcept]) -> Self {
        let mut dok: Vec<(ConceptId, Vec<ConceptId>)> = Vec::new();
        let mut kod: Vec<(ConceptId, Vec<ConceptId>)> = Vec::new();
        for d in dependents {
            match dok.iter_mut().find(|(k, _)| *k == d.of_key) {
                Some((_, v)) => v.push(d.concept),
                None => dok.push((d.of_key, vec![d.concept])),
            }
            match kod.iter_mut().find(|(c, _)| *c == d.concept) {
                Some((_, v)) => v.push(d.of_key),
                None => kod.push((d.concept, vec![d.of_key])),
            }
        }
        CompletionMetadata { dependents_of_key: dok, keys_of_dependent: kod }
    }

    /// The key concepts a dependent concept belongs to.
    pub fn keys_for(&self, dependent: ConceptId) -> &[ConceptId] {
        self.keys_of_dependent
            .iter()
            .find(|(c, _)| *c == dependent)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// The dependent concepts of a key concept.
    pub fn dependents_for(&self, key: ConceptId) -> &[ConceptId] {
        self.dependents_of_key
            .iter()
            .find(|(c, _)| *c == key)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig2_fixture;

    #[test]
    fn drug_is_a_key_concept() {
        let (onto, _, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let drug = onto.concept_id("Drug").unwrap();
        assert!(keys.contains(&drug), "Drug is the hub of the ontology");
    }

    #[test]
    fn union_members_are_not_key_concepts() {
        let (onto, _, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let ci = onto.concept_id("ContraIndication").unwrap();
        assert!(!keys.contains(&ci));
    }

    #[test]
    fn dependents_of_drug_include_precaution_and_risk() {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        let drug = onto.concept_id("Drug").unwrap();
        let prec = onto.concept_id("Precaution").unwrap();
        let risk = onto.concept_id("Risk").unwrap();
        assert!(deps.iter().any(|d| d.concept == prec && d.of_key == drug));
        let risk_dep = deps.iter().find(|d| d.concept == risk).expect("Risk is dependent");
        assert!(matches!(risk_dep.semantics, DependentSemantics::Union(ref m) if m.len() == 2));
    }

    #[test]
    fn inheritance_semantics_detected() {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        let di = onto.concept_id("DrugInteraction").unwrap();
        let dep = deps.iter().find(|d| d.concept == di).expect("DrugInteraction dependent");
        assert!(matches!(dep.semantics, DependentSemantics::Inheritance(ref c) if c.len() == 2));
    }

    #[test]
    fn key_concepts_are_not_their_own_dependents() {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        for d in &deps {
            assert!(!keys.contains(&d.concept));
        }
    }

    #[test]
    fn completion_metadata_roundtrip() {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        let meta = CompletionMetadata::build(&deps);
        let drug = onto.concept_id("Drug").unwrap();
        let prec = onto.concept_id("Precaution").unwrap();
        assert!(meta.dependents_for(drug).contains(&prec));
        assert_eq!(meta.keys_for(prec), &[drug]);
        assert!(meta.keys_for(drug).is_empty());
    }

    #[test]
    fn empty_ontology_yields_nothing() {
        let onto = Ontology::new("empty");
        let mapping = OntologyMapping::default();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        assert!(keys.is_empty());
    }
}
