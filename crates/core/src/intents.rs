//! Intent generation: grounding intents on the extracted query patterns
//! (paper §4.2).
//!
//! Each lookup group (a dependent concept plus its union/inheritance
//! expansions) becomes one intent; each direct relationship direction and
//! each indirect pattern becomes one intent. Intent names are derived from
//! the pattern structure and can be renamed by SME feedback.

use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::patterns::{PatternKind, QueryPattern};

/// Stable identifier of an intent within one conversation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IntentId(pub u32);

/// What an intent asks the system to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntentGoal {
    /// A domain query intent, grounded in one or more query patterns (the
    /// augmented patterns of a union/inheritance dependent share the
    /// intent).
    Query(Vec<QueryPattern>),
    /// A keyword-style intent for utterances mentioning only an entity of
    /// this concept (paper §6.1, DRUG_GENERAL).
    EntityOnly(ConceptId),
    /// A domain-independent conversation-management intent (paper §5.2
    /// step 3); handled by the dialogue layer.
    ConversationManagement,
}

/// One intent of the conversation space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intent {
    pub id: IntentId,
    /// Unique name, e.g. `Precautions of Drug`.
    pub name: String,
    pub goal: IntentGoal,
    /// Entities the intent logically depends on; the dialogue must elicit
    /// missing ones (slot filling).
    pub required_entities: Vec<ConceptId>,
    /// Entities captured when present but never elicited.
    pub optional_entities: Vec<ConceptId>,
    /// Template for the agent's fulfilment response; `{topic}`, `{entities}`
    /// and `{results}` are substituted by the dialogue layer.
    pub response_template: String,
}

impl Intent {
    /// The patterns grounding this intent (empty for non-query intents).
    pub fn patterns(&self) -> &[QueryPattern] {
        match &self.goal {
            IntentGoal::Query(ps) => ps,
            _ => &[],
        }
    }

    /// Whether this intent is a domain query.
    pub fn is_query(&self) -> bool {
        matches!(self.goal, IntentGoal::Query(_))
    }
}

/// Derives an intent name from a pattern group.
pub fn intent_name(onto: &Ontology, group: &[QueryPattern]) -> String {
    let lead = &group[0];
    match lead.kind {
        PatternKind::Lookup => {
            format!("{} of {}", pluralish(&lead.topic), onto.concept_name(lead.required[0]))
        }
        PatternKind::DirectRelationship => format!(
            "{} That {} {}",
            pluralish(&lead.topic),
            title_case(lead.relation_phrase.as_deref().unwrap_or("Relate To")),
            onto.concept_name(lead.required[0])
        ),
        PatternKind::InverseRelationship => format!(
            "{} {} {}",
            pluralish(&lead.topic),
            title_case(lead.relation_phrase.as_deref().unwrap_or("Related To")),
            onto.concept_name(lead.required[0])
        ),
        PatternKind::IndirectRelationship => {
            if lead.required.len() == 1 {
                format!(
                    "{} and {} for {}",
                    pluralish(&lead.topic),
                    lead.intermediates
                        .iter()
                        .map(|&c| onto.concept_name(c))
                        .collect::<Vec<_>>()
                        .join(" "),
                    onto.concept_name(lead.required[0])
                )
            } else {
                format!(
                    "{} of {} for {}",
                    pluralish(&lead.topic),
                    onto.concept_name(lead.required[0]),
                    onto.concept_name(lead.required[1])
                )
            }
        }
    }
}

/// Builds intents from pattern groups. Lookup groups arrive as-is; each
/// relationship pattern is its own group of one.
pub fn build_intents(
    onto: &Ontology,
    lookup_groups: Vec<Vec<QueryPattern>>,
    relationship_patterns: Vec<QueryPattern>,
    next_id: &mut u32,
) -> Vec<Intent> {
    let mut intents = Vec::new();
    let mut push = |group: Vec<QueryPattern>, intents: &mut Vec<Intent>| {
        if group.is_empty() {
            return;
        }
        let name = intent_name(onto, &group);
        let required = group[0].required.clone();
        let topic = group[0].topic.clone();
        let id = IntentId(*next_id);
        *next_id += 1;
        intents.push(Intent {
            id,
            name,
            required_entities: required,
            optional_entities: Vec::new(),
            response_template: format!(
                "Here are the {} for {{entities}}:\n{{results}}",
                pluralish(&topic)
            ),
            goal: IntentGoal::Query(group),
        });
    };
    for group in lookup_groups {
        push(group, &mut intents);
    }
    for pattern in relationship_patterns {
        push(vec![pattern], &mut intents);
    }
    // Deduplicate names deterministically by suffixing.
    let mut seen: Vec<String> = Vec::new();
    for intent in &mut intents {
        if seen.contains(&intent.name) {
            let mut n = 2;
            while seen.contains(&format!("{} ({n})", intent.name)) {
                n += 1;
            }
            intent.name = format!("{} ({n})", intent.name);
        }
        seen.push(intent.name.clone());
    }
    intents
}

/// Builds the keyword-style entity-only intent for a popular concept
/// (paper §6.1: DRUG_GENERAL).
pub fn entity_only_intent(onto: &Ontology, concept: ConceptId, next_id: &mut u32) -> Intent {
    let id = IntentId(*next_id);
    *next_id += 1;
    let name = format!("{}_GENERAL", onto.concept_name(concept).to_uppercase());
    Intent {
        id,
        name,
        goal: IntentGoal::EntityOnly(concept),
        required_entities: vec![concept],
        optional_entities: Vec::new(),
        response_template: format!(
            "Would you like to see the {{proposal}} of {{entities}}? \
             ({} details available)",
            onto.concept_name(concept)
        ),
    }
}

/// Naive pluralisation for intent names ("Precaution" → "Precautions").
fn pluralish(word: &str) -> String {
    if word.ends_with('s') || word.ends_with("(s)") {
        word.to_string()
    } else {
        format!("{word}s")
    }
}

fn title_case(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{identify_dependent_concepts, identify_key_concepts, KeyConceptConfig};
    use crate::patterns::{
        direct_relationship_patterns, indirect_relationship_patterns, lookup_patterns,
    };
    use crate::testutil::fig2_fixture;
    use obcs_kb::stats::CategoricalPolicy;

    fn intents() -> (Ontology, Vec<Intent>) {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        let lookups = lookup_patterns(&onto, &deps);
        let mut rels = direct_relationship_patterns(&onto, &keys);
        rels.extend(indirect_relationship_patterns(&onto, &keys, 2));
        let mut next = 0;
        let out = build_intents(&onto, lookups, rels, &mut next);
        (onto, out)
    }

    #[test]
    fn intent_ids_are_unique_and_sequential() {
        let (_, intents) = intents();
        for (i, intent) in intents.iter().enumerate() {
            assert_eq!(intent.id, IntentId(i as u32));
        }
    }

    #[test]
    fn intent_names_are_unique() {
        let (_, intents) = intents();
        let mut names: Vec<&str> = intents.iter().map(|i| i.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn lookup_intent_requires_its_key_concept() {
        let (onto, intents) = intents();
        let drug = onto.concept_id("Drug").unwrap();
        let prec_intent = intents
            .iter()
            .find(|i| i.name == "Precautions of Drug")
            .expect("precaution intent exists");
        assert_eq!(prec_intent.required_entities, vec![drug]);
        assert_eq!(prec_intent.patterns().len(), 1);
    }

    #[test]
    fn union_group_is_one_intent_with_three_patterns() {
        let (onto, intents) = intents();
        let risk = onto.concept_id("Risk").unwrap();
        let risk_intent = intents
            .iter()
            .find(|i| i.patterns().first().map(|p| p.focus) == Some(risk))
            .expect("risk intent");
        assert_eq!(risk_intent.patterns().len(), 3);
        assert_eq!(risk_intent.name, "Risks of Drug");
    }

    #[test]
    fn relationship_intent_names() {
        let (_, intents) = intents();
        let names: Vec<&str> = intents.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"Drugs That Treats Indication"), "names: {names:?}");
        assert!(names.contains(&"Indications Is Treated By Drug"), "names: {names:?}");
    }

    #[test]
    fn entity_only_intent_shape() {
        let (onto, _) = intents();
        let drug = onto.concept_id("Drug").unwrap();
        let mut next = 100;
        let intent = entity_only_intent(&onto, drug, &mut next);
        assert_eq!(intent.name, "DRUG_GENERAL");
        assert_eq!(intent.id, IntentId(100));
        assert!(!intent.is_query());
        assert_eq!(intent.required_entities, vec![drug]);
        assert_eq!(next, 101);
    }

    #[test]
    fn pluralish_behaviour() {
        assert_eq!(pluralish("Precaution"), "Precautions");
        assert_eq!(pluralish("Precautions"), "Precautions");
    }
}
