//! Query-pattern extraction from the domain ontology (paper §4.2.1,
//! Figures 3–6).
//!
//! Three pattern families are extracted around the identified key and
//! dependent concepts:
//!
//! * **Lookup** — information about a key concept with reference to a
//!   dependent concept ("Show me the Precautions for \<@Drug>?"). When the
//!   dependent concept is a union or inheritance parent, the pattern is
//!   augmented with one pattern per member/child, all grouped under a
//!   single intent (Fig. 4).
//! * **Direct relationship** — pairs of key concepts connected by a
//!   one-hop relationship, one pattern per direction (forward verbalised
//!   with the relationship name, inverse with its inverse name; Fig. 5).
//! * **Indirect relationship** — pairs of key concepts connected via
//!   multi-hop paths through intermediate concepts; two patterns per path,
//!   one projecting the endpoints and one projecting the intermediate
//!   (Fig. 6).

use obcs_ontology::graph::{paths_up_to, EdgeFilter, Path};
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::concepts::{DependentConcept, DependentSemantics};

/// The family a query pattern belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    Lookup,
    DirectRelationship,
    InverseRelationship,
    IndirectRelationship,
}

/// One extracted query pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPattern {
    pub kind: PatternKind,
    /// The concept whose information the query projects.
    pub focus: ConceptId,
    /// Filter slots: concepts whose instance must be supplied (required
    /// entities of the intent).
    pub required: Vec<ConceptId>,
    /// Intermediate concepts on the relationship path (indirect patterns).
    pub intermediates: Vec<ConceptId>,
    /// Verbalisation of the relationship ("treats" / "is treated by").
    pub relation_phrase: Option<String>,
    /// The display phrase of the requested information (dependent-concept
    /// name for lookups, focus name otherwise), already space-separated.
    pub topic: String,
    /// For augmented patterns: the abstract parent this pattern was derived
    /// from (the union/inheritance dependent).
    pub derived_from: Option<ConceptId>,
}

impl QueryPattern {
    /// Renders the canonical pattern phrase shown in the paper's figures,
    /// e.g. `Show me the Precautions for <@Drug>?`.
    pub fn render(&self, onto: &Ontology) -> String {
        match self.kind {
            PatternKind::Lookup => format!(
                "Show me the {} for <@{}>?",
                self.topic,
                onto.concept_name(self.required[0])
            ),
            PatternKind::DirectRelationship => format!(
                "What {} {} <@{}>?",
                self.topic,
                self.relation_phrase.as_deref().unwrap_or("relates to"),
                onto.concept_name(self.required[0])
            ),
            PatternKind::InverseRelationship => format!(
                "What {} {} <@{}>?",
                self.topic,
                self.relation_phrase.as_deref().unwrap_or("is related to"),
                onto.concept_name(self.required[0])
            ),
            PatternKind::IndirectRelationship => {
                let inter = self
                    .intermediates
                    .iter()
                    .map(|&c| spaced(onto.concept_name(c)))
                    .collect::<Vec<_>>()
                    .join(" and ");
                match self.required.len() {
                    1 => format!(
                        "Give me the {} and its {} that {} <@{}>?",
                        self.topic,
                        inter,
                        self.relation_phrase.as_deref().unwrap_or("relates to"),
                        onto.concept_name(self.required[0])
                    ),
                    _ => format!(
                        "Give me the {} for <@{}> that {} <@{}>?",
                        inter,
                        onto.concept_name(self.required[0]),
                        self.relation_phrase.as_deref().unwrap_or("relates to"),
                        onto.concept_name(self.required[1])
                    ),
                }
            }
        }
    }
}

/// `DrugFoodInteraction` → `Drug Food Interaction`.
pub fn spaced(name: &str) -> String {
    obcs_nlq::annotate::split_camel(name)
}

/// Extracts lookup patterns: one per (key, dependent) pair, augmented for
/// union/inheritance dependents. Returns groups — each group is the set of
/// patterns that share one intent (Fig. 4: the union parent's pattern plus
/// one per member).
pub fn lookup_patterns(onto: &Ontology, dependents: &[DependentConcept]) -> Vec<Vec<QueryPattern>> {
    let mut groups = Vec::new();
    for dep in dependents {
        let mut group = Vec::new();
        let base = QueryPattern {
            kind: PatternKind::Lookup,
            focus: dep.concept,
            required: vec![dep.of_key],
            intermediates: Vec::new(),
            relation_phrase: None,
            topic: spaced(onto.concept_name(dep.concept)),
            derived_from: None,
        };
        group.push(base);
        let expansions: &[ConceptId] = match &dep.semantics {
            DependentSemantics::Plain => &[],
            DependentSemantics::Union(members) => members,
            DependentSemantics::Inheritance(children) => children,
        };
        for &member in expansions {
            group.push(QueryPattern {
                kind: PatternKind::Lookup,
                focus: member,
                required: vec![dep.of_key],
                intermediates: Vec::new(),
                relation_phrase: None,
                topic: spaced(onto.concept_name(member)),
                derived_from: Some(dep.concept),
            });
        }
        groups.push(group);
    }
    groups
}

/// Extracts direct relationship patterns between pairs of key concepts:
/// a forward and (when an inverse verbalisation exists) an inverse pattern
/// per one-hop relationship (Fig. 5). Each direction is its own intent.
pub fn direct_relationship_patterns(
    onto: &Ontology,
    key_concepts: &[ConceptId],
) -> Vec<QueryPattern> {
    let mut out = Vec::new();
    for op in onto.object_properties() {
        if op.kind.is_hierarchical() {
            continue;
        }
        if !key_concepts.contains(&op.source) || !key_concepts.contains(&op.target) {
            continue;
        }
        if op.source == op.target {
            continue;
        }
        // Forward: "What Drug treats <@Indication>?" — projects the source,
        // filters on the target.
        out.push(QueryPattern {
            kind: PatternKind::DirectRelationship,
            focus: op.source,
            required: vec![op.target],
            intermediates: Vec::new(),
            relation_phrase: Some(op.name.clone()),
            topic: spaced(onto.concept_name(op.source)),
            derived_from: None,
        });
        // Inverse: "What Indications are treated by <@Drug>?" — projects
        // the target, filters on the source.
        if let Some(inverse) = &op.inverse_name {
            out.push(QueryPattern {
                kind: PatternKind::InverseRelationship,
                focus: op.target,
                required: vec![op.source],
                intermediates: Vec::new(),
                relation_phrase: Some(inverse.clone()),
                topic: spaced(onto.concept_name(op.target)),
                derived_from: None,
            });
        }
    }
    out
}

/// Extracts indirect relationship patterns: pairs of key concepts
/// connected by a 2..=`max_hops`-hop path of domain relationships whose
/// interior nodes are not key concepts. Two patterns per (pair, path):
/// pattern 1 projects the focus + intermediate filtered by the far key;
/// pattern 2 projects the intermediate filtered by both keys (Fig. 6).
pub fn indirect_relationship_patterns(
    onto: &Ontology,
    key_concepts: &[ConceptId],
    max_hops: usize,
) -> Vec<QueryPattern> {
    let mut out = Vec::new();
    for (i, &a) in key_concepts.iter().enumerate() {
        for &b in key_concepts.iter().skip(i + 1) {
            for path in paths_up_to(onto, a, b, max_hops, EdgeFilter::DomainOnly) {
                if path.len() < 2 {
                    continue;
                }
                let concepts = path.concepts(onto);
                let interior = &concepts[1..concepts.len() - 1];
                if interior.iter().any(|c| key_concepts.contains(c)) {
                    continue; // covered by shorter patterns around that key
                }
                let relation = relation_of_path(onto, &path);
                // Pattern 1: "Give me the Drug and its Dosage that treats
                // <@Indication>" — focus a, filter b.
                out.push(QueryPattern {
                    kind: PatternKind::IndirectRelationship,
                    focus: a,
                    required: vec![b],
                    intermediates: interior.to_vec(),
                    relation_phrase: relation.clone(),
                    topic: spaced(onto.concept_name(a)),
                    derived_from: None,
                });
                // Pattern 2: "Give me the Dosage for <@Drug> that treats
                // <@Indication>" — focus the (first) intermediate, filter
                // both keys.
                out.push(QueryPattern {
                    kind: PatternKind::IndirectRelationship,
                    focus: interior[0],
                    required: vec![a, b],
                    intermediates: interior.to_vec(),
                    relation_phrase: relation,
                    topic: spaced(onto.concept_name(interior[0])),
                    derived_from: None,
                });
            }
        }
    }
    out
}

/// A human phrase for the path's relationship: the name of its last hop
/// (the hop that reaches the far key concept).
fn relation_of_path(onto: &Ontology, path: &Path) -> Option<String> {
    path.hops.last().map(|h| onto.object_property(h.property).name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{identify_dependent_concepts, identify_key_concepts, KeyConceptConfig};
    use obcs_kb::stats::CategoricalPolicy;
    use obcs_ontology::OntologyBuilder;

    fn fig2() -> (Ontology, Vec<ConceptId>, Vec<DependentConcept>) {
        let (onto, kb, mapping) = crate::testutil::fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        (onto, keys, deps)
    }

    #[test]
    fn lookup_pattern_renders_like_figure3() {
        let (onto, _, deps) = fig2();
        let groups = lookup_patterns(&onto, &deps);
        let rendered: Vec<String> =
            groups.iter().flat_map(|g| g.iter().map(|p| p.render(&onto))).collect();
        assert!(
            rendered.contains(&"Show me the Precaution for <@Drug>?".to_string()),
            "rendered: {rendered:?}"
        );
    }

    #[test]
    fn union_dependent_is_augmented_like_figure4() {
        let (onto, _, deps) = fig2();
        let groups = lookup_patterns(&onto, &deps);
        let risk = onto.concept_id("Risk").unwrap();
        let group = groups.iter().find(|g| g[0].focus == risk).expect("risk lookup group");
        assert_eq!(group.len(), 3, "parent + two members");
        let topics: Vec<&str> = group.iter().map(|p| p.topic.as_str()).collect();
        assert!(topics.contains(&"Contra Indication"));
        assert!(topics.contains(&"Black Box Warning"));
        assert_eq!(group[1].derived_from, Some(risk));
        // All share the same required key concept.
        assert!(group.iter().all(|p| p.required == group[0].required));
    }

    #[test]
    fn inheritance_dependent_is_augmented() {
        let (onto, _, deps) = fig2();
        let groups = lookup_patterns(&onto, &deps);
        let di = onto.concept_id("DrugInteraction").unwrap();
        let group = groups.iter().find(|g| g[0].focus == di).expect("interaction group");
        assert_eq!(group.len(), 3);
    }

    #[test]
    fn direct_patterns_have_forward_and_inverse() {
        let (onto, keys, _) = fig2();
        let pats = direct_relationship_patterns(&onto, &keys);
        let drug = onto.concept_id("Drug").unwrap();
        let ind = onto.concept_id("Indication").unwrap();
        let fwd = pats
            .iter()
            .find(|p| p.kind == PatternKind::DirectRelationship)
            .expect("forward pattern");
        assert_eq!(fwd.focus, drug);
        assert_eq!(fwd.required, vec![ind]);
        assert_eq!(fwd.render(&onto), "What Drug treats <@Indication>?");
        let inv = pats
            .iter()
            .find(|p| p.kind == PatternKind::InverseRelationship)
            .expect("inverse pattern");
        assert_eq!(inv.focus, ind);
        assert_eq!(inv.render(&onto), "What Indication is treated by <@Drug>?");
    }

    #[test]
    fn indirect_patterns_via_dosage_like_figure6() {
        let (onto, keys, _) = fig2();
        let pats = indirect_relationship_patterns(&onto, &keys, 2);
        let dosage = onto.concept_id("Dosage").unwrap();
        assert_eq!(pats.len(), 2, "one 2-hop path → two patterns, got {pats:?}");
        assert!(pats.iter().any(|p| p.focus == dosage && p.required.len() == 2));
        assert!(pats.iter().any(|p| p.intermediates == vec![dosage] && p.required.len() == 1));
    }

    #[test]
    fn indirect_skips_paths_through_key_concepts() {
        // A - K - B where all three are key: interior K blocks the pattern.
        let onto = OntologyBuilder::new("t")
            .relation("r1", "A", "K")
            .relation("r2", "K", "B")
            .build()
            .unwrap();
        let a = onto.concept_id("A").unwrap();
        let k = onto.concept_id("K").unwrap();
        let b = onto.concept_id("B").unwrap();
        let pats = indirect_relationship_patterns(&onto, &[a, k, b], 2);
        assert!(pats.is_empty());
        // Without K as key, the path is admissible.
        let pats = indirect_relationship_patterns(&onto, &[a, b], 2);
        assert_eq!(pats.len(), 2);
    }

    #[test]
    fn self_relationships_are_skipped_in_direct_patterns() {
        let mut builder = OntologyBuilder::new("t").relation("r", "A", "B");
        builder = builder.relation("interactsWith", "A", "A");
        let onto = builder.build().unwrap();
        let a = onto.concept_id("A").unwrap();
        let b = onto.concept_id("B").unwrap();
        let pats = direct_relationship_patterns(&onto, &[a, b]);
        assert_eq!(pats.len(), 1, "self-loop produces no pattern");
    }

    #[test]
    fn spaced_names() {
        assert_eq!(spaced("BlackBoxWarning"), "Black Box Warning");
        assert_eq!(spaced("Drug"), "Drug");
    }
}
