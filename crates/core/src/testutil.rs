//! A miniature, fully populated reproduction of the paper's Figure 2
//! ontology with a backing knowledge base. Used by unit tests across
//! crates and by the smaller examples; the full-scale use case lives in
//! `obcs-mdx`.

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use obcs_nlq::OntologyMapping;
use obcs_ontology::{Ontology, OntologyBuilder};

/// Builds the mini Figure-2 world: `(ontology, kb, mapping)`.
///
/// Concepts: Drug, Indication, Precaution, Dosage, Risk (= ContraIndication
/// ∪ BlackBoxWarning), DrugInteraction (⊇ DrugFoodInteraction,
/// DrugLabInteraction). Drug is the hub; Dosage links Drug to Indication in
/// two hops. All concrete concepts have tables with a few seeded rows.
pub fn fig2_fixture() -> (Ontology, KnowledgeBase, OntologyMapping) {
    let onto = OntologyBuilder::new("mini-mdx")
        .data("Drug", &["name", "brand"])
        .data("Indication", &["name"])
        .data("Precaution", &["description"])
        .data("Dosage", &["description", "route"])
        .data("Risk", &["summary"])
        .data("ContraIndication", &["description"])
        .data("BlackBoxWarning", &["description"])
        .data("DrugInteraction", &["description"])
        .data("DrugFoodInteraction", &["mechanism"])
        .data("DrugLabInteraction", &["note"])
        .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
        .relation("hasPrecaution", "Drug", "Precaution")
        .relation("hasDosage", "Drug", "Dosage")
        .relation("dosageFor", "Dosage", "Indication")
        .relation("hasRisk", "Drug", "Risk")
        .relation("interacts", "Drug", "DrugInteraction")
        .union("Risk", &["ContraIndication", "BlackBoxWarning"])
        .is_a("DrugFoodInteraction", "DrugInteraction")
        .is_a("DrugLabInteraction", "DrugInteraction")
        .build()
        .expect("static fixture ontology is valid");

    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("brand", ColumnType::Text)
            .primary_key("drug_id"),
    )
    .expect("fixture schema");
    kb.create_table(
        TableSchema::new("indication")
            .column("indication_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("indication_id"),
    )
    .expect("fixture schema");
    // The direct Drug--treats-->Indication edge is realised by an M:N
    // bridge table named after the relationship.
    kb.create_table(
        TableSchema::new("treats")
            .column("id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("indication_id", ColumnType::Int)
            .primary_key("id")
            .foreign_key("drug_id", "drug", "drug_id")
            .foreign_key("indication_id", "indication", "indication_id"),
    )
    .expect("fixture schema");
    for t in ["precaution", "risk", "drug_interaction"] {
        kb.create_table(
            TableSchema::new(t)
                .column("id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("description", ColumnType::Text)
                .primary_key("id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )
        .expect("fixture schema");
    }
    kb.create_table(
        TableSchema::new("dosage")
            .column("id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("indication_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .column("route", ColumnType::Text)
            .primary_key("id")
            .foreign_key("drug_id", "drug", "drug_id")
            .foreign_key("indication_id", "indication", "indication_id"),
    )
    .expect("fixture schema");

    for (i, n) in ["Aspirin", "Ibuprofen", "Tazarotene"].iter().enumerate() {
        kb.insert(
            "drug",
            vec![Value::Int(i as i64), Value::text(*n), Value::text(format!("Brand{i}"))],
        )
        .expect("fixture rows");
    }
    for (i, n) in ["Fever", "Psoriasis"].iter().enumerate() {
        kb.insert("indication", vec![Value::Int(i as i64), Value::text(*n)]).expect("fixture rows");
    }
    for t in ["precaution", "risk", "drug_interaction"] {
        for i in 0..3i64 {
            kb.insert(t, vec![Value::Int(i), Value::Int(i), Value::text(format!("{t} info {i}"))])
                .expect("fixture rows");
        }
    }
    // Aspirin/Ibuprofen treat Fever; Tazarotene treats Psoriasis.
    for (i, (drug, ind)) in [(0, 0), (1, 0), (2, 1)].iter().enumerate() {
        kb.insert("treats", vec![Value::Int(i as i64), Value::Int(*drug), Value::Int(*ind)])
            .expect("fixture rows");
    }
    for i in 0..3i64 {
        kb.insert(
            "dosage",
            vec![
                Value::Int(i),
                Value::Int(i),
                Value::Int(i % 2),
                Value::text(format!("{}mg daily", (i + 1) * 100)),
                Value::text(if i % 2 == 0 { "ORAL" } else { "TOPICAL" }),
            ],
        )
        .expect("fixture rows");
    }
    let mapping = OntologyMapping::infer(&onto, &kb);
    (onto, kb, mapping)
}
