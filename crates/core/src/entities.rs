//! Entity extraction and synonym population for the conversation space
//! (paper §4.5, Tables 1–2).
//!
//! Three steps: (1) every ontology concept becomes an entity, with
//! union/inheritance groupings captured; (2) categorical key/dependent
//! concepts get their KB instance values as examples; (3) domain-specific
//! synonym dictionaries are applied for both concept names and instance
//! values.

use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::training::instance_values;

/// What an entity stands for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityKind {
    /// The concept itself ("Drug", "Precaution").
    Concept,
    /// A grouping entity for a union/inheritance parent, listing its
    /// members (Table 1, "Concepts under Risk").
    Grouping(Vec<ConceptId>),
}

/// One entity of the conversation space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityDef {
    pub concept: ConceptId,
    pub name: String,
    pub kind: EntityKind,
    /// Instance values from the KB (Table 1, "Instances of Drug").
    pub examples: Vec<String>,
    /// Synonyms for the concept name (Table 2).
    pub synonyms: Vec<String>,
}

/// A synonym dictionary: canonical phrase → synonyms. Applies to both
/// concept names and instance values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SynonymDict {
    entries: Vec<(String, Vec<String>)>,
}

impl SynonymDict {
    pub fn new() -> Self {
        SynonymDict::default()
    }

    /// Registers synonyms for a canonical phrase (merged if present).
    pub fn add(&mut self, canonical: impl Into<String>, synonyms: &[&str]) {
        let canonical = canonical.into();
        match self.entries.iter_mut().find(|(c, _)| *c == canonical) {
            Some((_, list)) => {
                for s in synonyms {
                    if !list.iter().any(|x| x == s) {
                        list.push((*s).to_string());
                    }
                }
            }
            None => {
                self.entries.push((canonical, synonyms.iter().map(|s| s.to_string()).collect()))
            }
        }
    }

    /// Synonyms of a canonical phrase (case-insensitive lookup).
    pub fn synonyms_of(&self, canonical: &str) -> &[String] {
        self.entries
            .iter()
            .find(|(c, _)| c.eq_ignore_ascii_case(canonical))
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(canonical, synonyms)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.entries.iter().map(|(c, v)| (c.as_str(), v.as_slice()))
    }
}

/// Extracts the entity population of the conversation space.
pub fn extract_entities(
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    synonyms: &SynonymDict,
    max_examples: usize,
) -> Vec<EntityDef> {
    let mut out = Vec::new();
    for c in onto.concepts() {
        let members = {
            let mut m = onto.union_members(c.id);
            m.extend(onto.is_a_children(c.id));
            m
        };
        let kind =
            if members.is_empty() { EntityKind::Concept } else { EntityKind::Grouping(members) };
        let spaced = crate::patterns::spaced(&c.name);
        let examples = instance_values(onto, kb, mapping, c.id, max_examples);
        out.push(EntityDef {
            concept: c.id,
            name: c.name.clone(),
            kind,
            examples,
            synonyms: synonyms.synonyms_of(&spaced).to_vec(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig2_fixture;

    #[test]
    fn every_concept_becomes_an_entity() {
        let (onto, kb, mapping) = fig2_fixture();
        let entities = extract_entities(&onto, &kb, &mapping, &SynonymDict::new(), 10);
        assert_eq!(entities.len(), onto.concept_count());
    }

    #[test]
    fn union_parent_is_grouping_entity() {
        let (onto, kb, mapping) = fig2_fixture();
        let entities = extract_entities(&onto, &kb, &mapping, &SynonymDict::new(), 10);
        let risk = onto.concept_id("Risk").unwrap();
        let e = entities.iter().find(|e| e.concept == risk).unwrap();
        assert!(matches!(e.kind, EntityKind::Grouping(ref m) if m.len() == 2));
    }

    #[test]
    fn drug_entity_has_instance_examples() {
        let (onto, kb, mapping) = fig2_fixture();
        let entities = extract_entities(&onto, &kb, &mapping, &SynonymDict::new(), 10);
        let drug = onto.concept_id("Drug").unwrap();
        let e = entities.iter().find(|e| e.concept == drug).unwrap();
        assert!(e.examples.contains(&"Aspirin".to_string()));
    }

    #[test]
    fn synonyms_are_attached() {
        let (onto, kb, mapping) = fig2_fixture();
        let mut dict = SynonymDict::new();
        dict.add("Drug", &["medicine", "meds", "medication"]);
        dict.add("Precaution", &["caution", "safe to give"]);
        let entities = extract_entities(&onto, &kb, &mapping, &dict, 10);
        let drug = onto.concept_id("Drug").unwrap();
        let e = entities.iter().find(|e| e.concept == drug).unwrap();
        assert_eq!(e.synonyms.len(), 3);
    }

    #[test]
    fn synonym_dict_merging_and_lookup() {
        let mut dict = SynonymDict::new();
        dict.add("Adverse Effect", &["side effect"]);
        dict.add("Adverse Effect", &["adverse reaction", "side effect"]);
        assert_eq!(dict.synonyms_of("adverse effect").len(), 2, "deduplicated");
        assert!(dict.synonyms_of("unknown").is_empty());
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn example_limit_respected() {
        let (onto, kb, mapping) = fig2_fixture();
        let entities = extract_entities(&onto, &kb, &mapping, &SynonymDict::new(), 1);
        for e in &entities {
            assert!(e.examples.len() <= 1);
        }
    }
}
