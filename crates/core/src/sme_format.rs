//! A plain-text annotation format for SME feedback — the reproduction of
//! the paper's §4.2.2 tooling that "allows SMEs to interact with our
//! domain ontology, and mark expected query patterns as annotations".
//!
//! SMEs edit a text file; [`parse`] turns it into an [`SmeFeedback`]
//! resolved against the domain ontology. One directive per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! prune: Dosages of Condition
//! rename: Drug Interactions of Drug -> Drug-Drug Interactions
//! synonym: Adverse Effect = side effect, adverse reaction, AE
//! example: Uses of Drug :: what does aspirin do
//! entity-only: Drug
//! management: Greeting :: Hello. This is {agent}.
//! pattern: Storage of Drug :: lookup Storage of Drug
//! pattern: Drugs That Interact With Drug :: relationship Drug interactsWith Drug
//! ```

use std::fmt;

use obcs_ontology::Ontology;

use crate::patterns::{spaced, PatternKind, QueryPattern};
use crate::sme::SmeFeedback;

/// Errors from parsing an SME annotation file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmeFormatError {
    /// A line had no recognised directive.
    UnknownDirective { line: usize, text: String },
    /// A directive was malformed.
    Malformed { line: usize, message: String },
    /// A pattern referenced a concept missing from the ontology.
    UnknownConcept { line: usize, name: String },
}

impl fmt::Display for SmeFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmeFormatError::UnknownDirective { line, text } => {
                write!(f, "line {line}: unknown directive `{text}`")
            }
            SmeFormatError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            SmeFormatError::UnknownConcept { line, name } => {
                write!(f, "line {line}: unknown concept `{name}`")
            }
        }
    }
}

impl std::error::Error for SmeFormatError {}

/// Parses an SME annotation file into feedback, resolving concepts against
/// the ontology.
///
/// ```
/// let (onto, _, _) = obcs_core::testutil::fig2_fixture();
/// let fb = obcs_core::sme_format::parse(
///     "synonym: Drug = medicine, meds\nentity-only: Drug\n",
///     &onto,
/// ).unwrap();
/// assert_eq!(fb.synonyms.len(), 1);
/// assert_eq!(fb.entity_only_concepts.len(), 1);
/// ```
pub fn parse(text: &str, onto: &Ontology) -> Result<SmeFeedback, SmeFormatError> {
    let mut fb = SmeFeedback::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((directive, rest)) = line.split_once(':') else {
            return Err(SmeFormatError::UnknownDirective { line: lineno, text: line.to_string() });
        };
        let rest = rest.trim();
        match directive.trim() {
            "prune" => {
                fb = fb.prune(rest);
            }
            "rename" => {
                let (from, to) = rest.split_once("->").ok_or(SmeFormatError::Malformed {
                    line: lineno,
                    message: "rename needs `old -> new`".into(),
                })?;
                fb = fb.rename(from.trim(), to.trim());
            }
            "synonym" => {
                let (canonical, list) = rest.split_once('=').ok_or(SmeFormatError::Malformed {
                    line: lineno,
                    message: "synonym needs `Canonical = a, b, c`".into(),
                })?;
                let synonyms: Vec<&str> =
                    list.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                if synonyms.is_empty() {
                    return Err(SmeFormatError::Malformed {
                        line: lineno,
                        message: "synonym list is empty".into(),
                    });
                }
                fb = fb.synonym(canonical.trim(), &synonyms);
            }
            "example" => {
                let (intent, example) = rest.split_once("::").ok_or(SmeFormatError::Malformed {
                    line: lineno,
                    message: "example needs `Intent Name :: utterance`".into(),
                })?;
                fb = fb.labelled_query(intent.trim(), example.trim());
            }
            "entity-only" => {
                let concept = onto.concept_id(rest).map_err(|_| {
                    SmeFormatError::UnknownConcept { line: lineno, name: rest.to_string() }
                })?;
                fb = fb.entity_only(concept);
            }
            "management" => {
                let (name, response) = rest.split_once("::").ok_or(SmeFormatError::Malformed {
                    line: lineno,
                    message: "management needs `Name :: response`".into(),
                })?;
                fb = fb.management_intent(name.trim(), response.trim());
            }
            "pattern" => {
                let (intent, spec) = rest.split_once("::").ok_or(SmeFormatError::Malformed {
                    line: lineno,
                    message: "pattern needs `Intent Name :: lookup|relationship …`".into(),
                })?;
                let pattern = parse_pattern(spec.trim(), onto, lineno)?;
                fb = fb.additional_intent(intent.trim(), vec![pattern]);
            }
            other => {
                return Err(SmeFormatError::UnknownDirective {
                    line: lineno,
                    text: other.to_string(),
                })
            }
        }
    }
    Ok(fb)
}

/// `lookup Focus of Key` | `relationship Focus relName Required`
fn parse_pattern(
    spec: &str,
    onto: &Ontology,
    lineno: usize,
) -> Result<QueryPattern, SmeFormatError> {
    let resolve = |name: &str| {
        onto.concept_id(name)
            .map_err(|_| SmeFormatError::UnknownConcept { line: lineno, name: name.to_string() })
    };
    let tokens: Vec<&str> = spec.split_whitespace().collect();
    match tokens.as_slice() {
        ["lookup", focus, "of", key] => {
            let focus_id = resolve(focus)?;
            Ok(QueryPattern {
                kind: PatternKind::Lookup,
                focus: focus_id,
                required: vec![resolve(key)?],
                intermediates: Vec::new(),
                relation_phrase: None,
                topic: spaced(focus),
                derived_from: None,
            })
        }
        ["relationship", focus, relation, required] => {
            let focus_id = resolve(focus)?;
            Ok(QueryPattern {
                kind: PatternKind::DirectRelationship,
                focus: focus_id,
                required: vec![resolve(required)?],
                intermediates: Vec::new(),
                relation_phrase: Some(spaced(relation).to_lowercase()),
                topic: spaced(focus),
                derived_from: None,
            })
        }
        _ => Err(SmeFormatError::Malformed {
            line: lineno,
            message: format!(
                "pattern spec must be `lookup F of K` or `relationship F rel K`, got `{spec}`"
            ),
        }),
    }
}

/// Renders feedback back to the annotation format (for tooling that lets
/// SMEs start from the current state). Additional-intent patterns are
/// rendered only for the two supported shapes.
pub fn render(fb: &SmeFeedback, onto: &Ontology) -> String {
    let mut out = String::new();
    for p in &fb.pruned_intents {
        out.push_str(&format!("prune: {p}\n"));
    }
    for (from, to) in &fb.renames {
        out.push_str(&format!("rename: {from} -> {to}\n"));
    }
    for (canonical, synonyms) in &fb.synonyms {
        out.push_str(&format!("synonym: {canonical} = {}\n", synonyms.join(", ")));
    }
    for q in &fb.labelled_queries {
        out.push_str(&format!("example: {} :: {}\n", q.intent_name, q.text));
    }
    for &c in &fb.entity_only_concepts {
        out.push_str(&format!("entity-only: {}\n", onto.concept_name(c)));
    }
    for (name, response) in &fb.management_intents {
        out.push_str(&format!("management: {name} :: {response}\n"));
    }
    for (name, patterns) in &fb.additional_intents {
        for p in patterns {
            match p.kind {
                PatternKind::Lookup if p.required.len() == 1 => {
                    out.push_str(&format!(
                        "pattern: {name} :: lookup {} of {}\n",
                        onto.concept_name(p.focus),
                        onto.concept_name(p.required[0])
                    ));
                }
                PatternKind::DirectRelationship if p.required.len() == 1 => {
                    out.push_str(&format!(
                        "pattern: {name} :: relationship {} {} {}\n",
                        onto.concept_name(p.focus),
                        p.relation_phrase.as_deref().unwrap_or("relatesTo").replace(' ', ""),
                        onto.concept_name(p.required[0])
                    ));
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig2_fixture;

    const SAMPLE: &str = r#"
# MDX SME annotations
prune: Dosages of Condition
rename: Drug Interactions of Drug -> Drug-Drug Interactions
synonym: Adverse Effect = side effect, adverse reaction, AE
example: Uses of Drug :: what does aspirin do
entity-only: Drug
management: Greeting :: Hello. This is {agent}.
pattern: Indications of Drug :: lookup Indication of Drug
pattern: Drugs That Treat Indication :: relationship Drug treats Indication
"#;

    #[test]
    fn parses_all_directives() {
        let (onto, _, _) = fig2_fixture();
        let fb = parse(SAMPLE, &onto).expect("parses");
        assert_eq!(fb.pruned_intents, vec!["Dosages of Condition"]);
        assert_eq!(fb.renames.len(), 1);
        assert_eq!(fb.synonyms[0].1.len(), 3);
        assert_eq!(fb.labelled_queries[0].text, "what does aspirin do");
        assert_eq!(fb.entity_only_concepts.len(), 1);
        assert_eq!(fb.management_intents[0].0, "Greeting");
        assert_eq!(fb.additional_intents.len(), 2);
        assert_eq!(fb.additional_intents[0].1[0].kind, PatternKind::Lookup);
        assert_eq!(fb.additional_intents[1].1[0].relation_phrase.as_deref(), Some("treats"));
    }

    #[test]
    fn round_trips_through_render() {
        let (onto, _, _) = fig2_fixture();
        let fb = parse(SAMPLE, &onto).expect("parses");
        let rendered = render(&fb, &onto);
        let back = parse(&rendered, &onto).expect("re-parses");
        assert_eq!(back.pruned_intents, fb.pruned_intents);
        assert_eq!(back.renames, fb.renames);
        assert_eq!(back.synonyms, fb.synonyms);
        assert_eq!(back.labelled_queries, fb.labelled_queries);
        assert_eq!(back.entity_only_concepts, fb.entity_only_concepts);
        assert_eq!(back.additional_intents.len(), fb.additional_intents.len());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let (onto, _, _) = fig2_fixture();
        let err = parse("nonsense without colon", &onto).unwrap_err();
        assert!(matches!(err, SmeFormatError::UnknownDirective { line: 1, .. }), "{err}");
        let err = parse("\nrename: only old name", &onto).unwrap_err();
        assert!(matches!(err, SmeFormatError::Malformed { line: 2, .. }), "{err}");
        let err = parse("entity-only: Ghost", &onto).unwrap_err();
        assert!(matches!(err, SmeFormatError::UnknownConcept { .. }), "{err}");
        let err = parse("pattern: X :: lookup Ghost of Drug", &onto).unwrap_err();
        assert!(matches!(err, SmeFormatError::UnknownConcept { .. }), "{err}");
        let err = parse("pattern: X :: teleport A to B", &onto).unwrap_err();
        assert!(matches!(err, SmeFormatError::Malformed { .. }), "{err}");
    }

    #[test]
    fn parsed_feedback_drives_bootstrap() {
        let (onto, kb, mapping) = fig2_fixture();
        let fb = parse(
            "example: Precautions of Drug :: is aspirin safe to give\nentity-only: Drug\n",
            &onto,
        )
        .expect("parses");
        let space = crate::bootstrap(&onto, &kb, &mapping, crate::BootstrapConfig::default(), &fb);
        assert!(space.intent_by_name("DRUG_GENERAL").is_some());
        assert!(space.training.iter().any(|e| e.text == "is aspirin safe to give"));
    }
}
