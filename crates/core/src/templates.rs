//! Structured-query-template generation per intent (paper §4.4, Fig. 9).
//!
//! Each query pattern is interpreted through the NLQ service to produce a
//! parameterised SQL template. Patterns whose focus concept cannot be
//! mapped to a physical table (abstract members without backing tables)
//! are skipped — the intent keeps the templates of its mappable patterns.

use obcs_kb::KnowledgeBase;
use obcs_nlq::interpret::{build_query, Filter};
use obcs_nlq::{NlqError, OntologyMapping, QueryTemplate};
use obcs_ontology::Ontology;
use serde::{Deserialize, Serialize};

use crate::intents::{Intent, IntentId};
use crate::patterns::QueryPattern;

/// One template with the topic of the pattern it was derived from (used
/// to label merged result sections for union/inheritance intents).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledTemplate {
    /// The pattern's topic, e.g. `Contra Indication`.
    pub topic: String,
    pub template: QueryTemplate,
}

/// The templates bound to one intent: one per mappable pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntentTemplates {
    pub intent: IntentId,
    pub templates: Vec<LabeledTemplate>,
}

/// Generates a template for one pattern through the NLQ pipeline.
pub fn template_for_pattern(
    pattern: &QueryPattern,
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
) -> Result<QueryTemplate, NlqError> {
    let filters: Vec<Filter> = pattern
        .required
        .iter()
        .map(|&c| {
            let column = mapping
                .label(c)
                .ok_or_else(|| NlqError::UnmappedConcept(onto.concept_name(c).to_string()))?
                .to_string();
            Ok(Filter { concept: c, column, value: String::new() })
        })
        .collect::<Result<_, NlqError>>()?;
    let q = build_query(onto, mapping, pattern.focus, &filters)?;
    q.to_template(onto, kb, mapping)
}

/// Generates the templates of every query intent, skipping unmappable
/// patterns. Returns the per-intent templates plus a log of skipped
/// `(intent, pattern topic, reason)` entries for SME review.
pub fn generate_templates(
    intents: &[Intent],
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
) -> (Vec<IntentTemplates>, Vec<(IntentId, String, String)>) {
    let mut out = Vec::new();
    let mut skipped = Vec::new();
    for intent in intents {
        let mut templates = Vec::new();
        for pattern in intent.patterns() {
            match template_for_pattern(pattern, onto, kb, mapping) {
                Ok(t) => {
                    templates.push(LabeledTemplate { topic: pattern.topic.clone(), template: t })
                }
                Err(e) => skipped.push((intent.id, pattern.topic.clone(), e.to_string())),
            }
        }
        if !templates.is_empty() {
            out.push(IntentTemplates { intent: intent.id, templates });
        }
    }
    (out, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{identify_dependent_concepts, identify_key_concepts, KeyConceptConfig};
    use crate::intents::build_intents;
    use crate::patterns::{
        direct_relationship_patterns, indirect_relationship_patterns, lookup_patterns, PatternKind,
    };
    use crate::testutil::fig2_fixture;
    use obcs_kb::stats::CategoricalPolicy;

    fn setup() -> (Ontology, KnowledgeBase, OntologyMapping, Vec<Intent>) {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        let lookups = lookup_patterns(&onto, &deps);
        let mut rels = direct_relationship_patterns(&onto, &keys);
        rels.extend(indirect_relationship_patterns(&onto, &keys, 2));
        let mut next = 0;
        let intents = build_intents(&onto, lookups, rels, &mut next);
        (onto, kb, mapping, intents)
    }

    #[test]
    fn lookup_template_matches_figure9_shape() {
        let (onto, kb, mapping, intents) = setup();
        let prec_intent = intents.iter().find(|i| i.name == "Precautions of Drug").unwrap();
        let tpl = template_for_pattern(&prec_intent.patterns()[0], &onto, &kb, &mapping).unwrap();
        assert!(tpl.sql().contains("SELECT DISTINCT oPrecaution.description"), "{}", tpl.sql());
        assert!(tpl.sql().contains("INNER JOIN drug oDrug"), "{}", tpl.sql());
        assert!(tpl.sql().contains("oDrug.name = '<@Drug>'"), "{}", tpl.sql());
    }

    #[test]
    fn templates_execute_after_instantiation() {
        let (onto, kb, mapping, intents) = setup();
        let drug = onto.concept_id("Drug").unwrap();
        let prec_intent = intents.iter().find(|i| i.name == "Precautions of Drug").unwrap();
        let tpl = template_for_pattern(&prec_intent.patterns()[0], &onto, &kb, &mapping).unwrap();
        let sql = tpl.instantiate(&[(drug, "Aspirin".into())]).unwrap();
        let rs = kb.query(&sql).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn abstract_members_are_skipped_with_reasons() {
        let (onto, kb, mapping, intents) = setup();
        let (templates, skipped) = generate_templates(&intents, &onto, &kb, &mapping);
        // ContraIndication / BlackBoxWarning / DrugFood/LabInteraction have
        // no tables in the fixture → their augmented patterns are skipped,
        // but the parent templates survive.
        assert!(!skipped.is_empty());
        let risk = onto.concept_id("Risk").unwrap();
        let risk_intent =
            intents.iter().find(|i| i.patterns().first().map(|p| p.focus) == Some(risk)).unwrap();
        let risk_templates = templates
            .iter()
            .find(|t| t.intent == risk_intent.id)
            .expect("risk parent template survives");
        assert_eq!(risk_templates.templates.len(), 1);
    }

    #[test]
    fn indirect_template_has_two_parameters() {
        let (onto, kb, mapping, intents) = setup();
        let two_param = intents
            .iter()
            .flat_map(|i| i.patterns())
            .find(|p| p.kind == PatternKind::IndirectRelationship && p.required.len() == 2)
            .expect("two-filter indirect pattern exists");
        let tpl = template_for_pattern(two_param, &onto, &kb, &mapping).unwrap();
        assert_eq!(tpl.required_concepts().len(), 2);
        assert!(tpl.sql().contains("'<@Drug>'"));
        assert!(tpl.sql().contains("'<@Indication>'"));
    }

    #[test]
    fn every_query_intent_gets_at_least_one_template() {
        let (onto, kb, mapping, intents) = setup();
        let (templates, _) = generate_templates(&intents, &onto, &kb, &mapping);
        for intent in intents.iter().filter(|i| i.is_query()) {
            assert!(
                templates.iter().any(|t| t.intent == intent.id),
                "intent `{}` has no template",
                intent.name
            );
        }
    }
}
