//! The conversation space and the bootstrapping orchestration (paper §4).
//!
//! [`bootstrap`] runs the full offline pipeline of Figure 1(a): key- and
//! dependent-concept identification, query-pattern extraction, intent
//! generation, SME feedback application, training-example generation,
//! entity and synonym population, and structured-query-template generation.

use obcs_kb::stats::CategoricalPolicy;
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::concepts::{
    identify_dependent_concepts, identify_key_concepts, CompletionMetadata, DependentConcept,
    KeyConceptConfig,
};
use crate::entities::{extract_entities, EntityDef, SynonymDict};
use crate::intents::{build_intents, entity_only_intent, Intent, IntentId};
use crate::patterns::{
    direct_relationship_patterns, indirect_relationship_patterns, lookup_patterns,
};
use crate::sme::SmeFeedback;
use crate::templates::{generate_templates, IntentTemplates};
use crate::training::{generate_all, TrainingExample, TrainingGenConfig};

/// Configuration of the bootstrapping pipeline.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    pub key_concepts: KeyConceptConfig,
    pub categorical: CategoricalPolicy,
    pub training: TrainingGenConfig,
    /// Maximum hops for indirect relationship patterns (paper uses 2).
    pub max_indirect_hops: usize,
    /// Maximum instance examples stored per entity.
    pub max_entity_examples: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            key_concepts: KeyConceptConfig::default(),
            categorical: CategoricalPolicy::default(),
            training: TrainingGenConfig::default(),
            max_indirect_hops: 2,
            max_entity_examples: 64,
        }
    }
}

/// The bootstrapped conversation space: every artifact the online system
/// needs (paper §4.1 building blocks plus templates and completion
/// metadata).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConversationSpace {
    pub ontology_name: String,
    pub key_concepts: Vec<ConceptId>,
    pub dependents: Vec<DependentConcept>,
    pub intents: Vec<Intent>,
    pub training: Vec<TrainingExample>,
    pub entities: Vec<EntityDef>,
    pub synonyms: SynonymDict,
    pub templates: Vec<IntentTemplates>,
    pub completion: CompletionMetadata,
    /// Patterns that could not receive a template, with reasons.
    pub skipped_templates: Vec<(IntentId, String, String)>,
}

impl ConversationSpace {
    pub fn intent(&self, id: IntentId) -> Option<&Intent> {
        self.intents.iter().find(|i| i.id == id)
    }

    pub fn intent_by_name(&self, name: &str) -> Option<&Intent> {
        self.intents.iter().find(|i| i.name == name)
    }

    pub fn templates_for(&self, id: IntentId) -> &[crate::templates::LabeledTemplate] {
        self.templates
            .iter()
            .find(|t| t.intent == id)
            .map(|t| t.templates.as_slice())
            .unwrap_or(&[])
    }

    /// Counts of the space's artifacts, printed by the repro harness
    /// against the paper's §6 inventory.
    pub fn inventory(&self) -> SpaceInventory {
        use crate::intents::IntentGoal;
        use crate::patterns::PatternKind;
        let mut lookup = 0usize;
        let mut relationship = 0usize;
        let mut entity_only = 0usize;
        let mut management = 0usize;
        for i in &self.intents {
            match &i.goal {
                IntentGoal::Query(ps) => match ps[0].kind {
                    PatternKind::Lookup => lookup += 1,
                    _ => relationship += 1,
                },
                IntentGoal::EntityOnly(_) => entity_only += 1,
                IntentGoal::ConversationManagement => management += 1,
            }
        }
        SpaceInventory {
            intents_total: self.intents.len(),
            lookup_intents: lookup,
            relationship_intents: relationship,
            entity_only_intents: entity_only,
            management_intents: management,
            entities: self.entities.len(),
            training_examples: self.training.len(),
            templates: self.templates.iter().map(|t| t.templates.len()).sum(),
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("space serialisation cannot fail")
    }

    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Artifact counts of a conversation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceInventory {
    pub intents_total: usize,
    pub lookup_intents: usize,
    pub relationship_intents: usize,
    pub entity_only_intents: usize,
    pub management_intents: usize,
    pub entities: usize,
    pub training_examples: usize,
    pub templates: usize,
}

/// Runs the full offline bootstrapping pipeline (Figure 1a).
///
/// ```
/// use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
///
/// let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
/// let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
/// // Lookup intents for Drug's dependent concepts, relationship intents
/// // for Drug↔Indication, training examples and SQL templates — all from
/// // the ontology alone.
/// assert!(space.intent_by_name("Precautions of Drug").is_some());
/// assert!(space.inventory().training_examples > 50);
/// ```
pub fn bootstrap(
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    config: BootstrapConfig,
    sme: &SmeFeedback,
) -> ConversationSpace {
    // §4.2.1 — concepts and patterns.
    let key_concepts = identify_key_concepts(onto, mapping, config.key_concepts);
    let dependents =
        identify_dependent_concepts(onto, kb, mapping, &key_concepts, config.categorical);
    let lookups = lookup_patterns(onto, &dependents);
    let mut relationship = direct_relationship_patterns(onto, &key_concepts);
    relationship.extend(indirect_relationship_patterns(
        onto,
        &key_concepts,
        config.max_indirect_hops,
    ));

    // Intent generation.
    let mut next_id = 0u32;
    let mut intents = build_intents(onto, lookups, relationship, &mut next_id);

    // §4.2.2 — SME feedback on intents (prune / rename / add).
    sme.apply_to_intents(&mut intents, &mut next_id, onto);
    for &concept in &sme.entity_only_concepts {
        intents.push(entity_only_intent(onto, concept, &mut next_id));
    }

    // §4.5 — entities + synonyms (SME synonyms first: they feed entity
    // definitions).
    let mut synonyms = SynonymDict::new();
    sme.apply_synonyms(&mut synonyms);
    let entities = extract_entities(onto, kb, mapping, &synonyms, config.max_entity_examples);

    // §4.3 — training examples: generated + SME augmentation.
    let mut training = generate_all(&intents, onto, kb, mapping, &synonyms, config.training);
    let (sme_examples, _unresolved) = sme.training_examples(&intents);
    training.extend(sme_examples);

    // §4.4 — structured query templates.
    let (templates, skipped_templates) = generate_templates(&intents, onto, kb, mapping);

    let completion = CompletionMetadata::build(&dependents);
    ConversationSpace {
        ontology_name: onto.name.clone(),
        key_concepts,
        dependents,
        intents,
        training,
        entities,
        synonyms,
        templates,
        completion,
        skipped_templates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig2_fixture;

    fn space() -> (Ontology, KnowledgeBase, OntologyMapping, ConversationSpace) {
        let (onto, kb, mapping) = fig2_fixture();
        let drug = onto.concept_id("Drug").unwrap();
        let sme = SmeFeedback::new()
            .synonym("Drug", &["medicine", "medication"])
            .entity_only(drug)
            .labelled_query("Precautions of Drug", "is aspirin safe to give?");
        let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        (onto, kb, mapping, space)
    }

    #[test]
    fn bootstrap_produces_all_artifact_kinds() {
        let (_, _, _, space) = space();
        let inv = space.inventory();
        assert!(inv.lookup_intents >= 3, "inventory: {inv:?}");
        assert!(inv.relationship_intents >= 3, "inventory: {inv:?}");
        assert_eq!(inv.entity_only_intents, 1);
        assert!(inv.entities == 10, "one per concept");
        assert!(inv.training_examples > 50);
        assert!(inv.templates >= inv.lookup_intents);
    }

    #[test]
    fn sme_examples_present_in_training() {
        let (_, _, _, space) = space();
        assert!(space.training.iter().any(|e| e.text == "is aspirin safe to give?"));
    }

    #[test]
    fn lookup_and_template_lookup_by_id() {
        let (_, _, _, space) = space();
        let intent = space.intent_by_name("Precautions of Drug").unwrap();
        assert!(space.intent(intent.id).is_some());
        assert!(!space.templates_for(intent.id).is_empty());
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let (onto, kb, mapping) = fig2_fixture();
        let sme = SmeFeedback::new();
        let a = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        let b = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        assert_eq!(a.training, b.training);
        assert_eq!(a.inventory(), b.inventory());
    }

    #[test]
    fn space_json_roundtrip() {
        let (_, _, _, space) = space();
        let json = space.to_json();
        let back = ConversationSpace::from_json(&json).unwrap();
        assert_eq!(back.inventory(), space.inventory());
        assert_eq!(back.intents.len(), space.intents.len());
    }

    #[test]
    fn completion_metadata_links_dependents() {
        let (onto, _, _, space) = space();
        let drug = onto.concept_id("Drug").unwrap();
        assert!(!space.completion.dependents_for(drug).is_empty());
    }
}
