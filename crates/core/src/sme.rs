//! SME feedback integration (paper §4.2.2, §4.3.2).
//!
//! Subject-matter experts refine the bootstrapped conversation space
//! through a declarative feedback object: extra query patterns annotated on
//! the ontology, pruning of unrealistic patterns, intent renames, labelled
//! prior user queries as additional training examples, and synonym
//! additions. Feedback is applied after automatic extraction and before
//! template/training generation is finalised.

use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::entities::SynonymDict;
use crate::intents::{Intent, IntentGoal};
use crate::patterns::QueryPattern;
use crate::training::{ExampleSource, TrainingExample};

/// A labelled prior user query supplied by an SME (Fig. 8 augmentation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelledQuery {
    /// Intent name the query belongs to (resolved against intent names
    /// after renames).
    pub intent_name: String,
    pub text: String,
}

/// Declarative SME feedback on a bootstrapped space.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SmeFeedback {
    /// Intents to remove entirely (unrealistic patterns, §4.2.2).
    pub pruned_intents: Vec<String>,
    /// Intent renames: (generated name, product name).
    pub renames: Vec<(String, String)>,
    /// Additional query patterns to append, grouped into new intents:
    /// (intent name, patterns).
    pub additional_intents: Vec<(String, Vec<QueryPattern>)>,
    /// Prior user queries labelled with intents.
    pub labelled_queries: Vec<LabelledQuery>,
    /// Synonym additions (canonical phrase, synonyms).
    pub synonyms: Vec<(String, Vec<String>)>,
    /// Concepts that deserve an entity-only keyword intent (§6.1).
    pub entity_only_concepts: Vec<ConceptId>,
    /// Conversation-management intents to register in the space: (name,
    /// response template). The dialogue layer handles their behaviour;
    /// registering them here makes them part of the classifier's label
    /// space (the paper's 14 management intents, §6.1).
    pub management_intents: Vec<(String, String)>,
}

impl SmeFeedback {
    pub fn new() -> Self {
        SmeFeedback::default()
    }

    /// Marks an intent for pruning.
    pub fn prune(mut self, intent_name: &str) -> Self {
        self.pruned_intents.push(intent_name.to_string());
        self
    }

    /// Renames a generated intent.
    pub fn rename(mut self, from: &str, to: &str) -> Self {
        self.renames.push((from.to_string(), to.to_string()));
        self
    }

    /// Adds a labelled prior user query.
    pub fn labelled_query(mut self, intent_name: &str, text: &str) -> Self {
        self.labelled_queries
            .push(LabelledQuery { intent_name: intent_name.to_string(), text: text.to_string() });
        self
    }

    /// Adds synonyms for a canonical phrase.
    pub fn synonym(mut self, canonical: &str, synonyms: &[&str]) -> Self {
        self.synonyms
            .push((canonical.to_string(), synonyms.iter().map(|s| s.to_string()).collect()));
        self
    }

    /// Requests an entity-only intent for a concept.
    pub fn entity_only(mut self, concept: ConceptId) -> Self {
        self.entity_only_concepts.push(concept);
        self
    }

    /// Adds a new intent from SME-identified patterns.
    pub fn additional_intent(mut self, name: &str, patterns: Vec<QueryPattern>) -> Self {
        self.additional_intents.push((name.to_string(), patterns));
        self
    }

    /// Registers a conversation-management intent.
    pub fn management_intent(mut self, name: &str, response: &str) -> Self {
        self.management_intents.push((name.to_string(), response.to_string()));
        self
    }

    /// Applies pruning, renames and additional intents to the intent list.
    /// Returns the names of pruned intents that did not exist (for
    /// diagnostics).
    pub fn apply_to_intents(
        &self,
        intents: &mut Vec<Intent>,
        next_id: &mut u32,
        _onto: &Ontology,
    ) -> Vec<String> {
        let mut missing = Vec::new();
        for name in &self.pruned_intents {
            let before = intents.len();
            intents.retain(|i| &i.name != name);
            if intents.len() == before {
                missing.push(name.clone());
            }
        }
        for (from, to) in &self.renames {
            match intents.iter_mut().find(|i| &i.name == from) {
                Some(i) => i.name = to.clone(),
                None => missing.push(from.clone()),
            }
        }
        for (name, response) in &self.management_intents {
            let id = crate::intents::IntentId(*next_id);
            *next_id += 1;
            intents.push(Intent {
                id,
                name: name.clone(),
                goal: IntentGoal::ConversationManagement,
                required_entities: Vec::new(),
                optional_entities: Vec::new(),
                response_template: response.clone(),
            });
        }
        for (name, patterns) in &self.additional_intents {
            if patterns.is_empty() {
                continue;
            }
            let required = patterns[0].required.clone();
            let topic = patterns[0].topic.clone();
            let id = crate::intents::IntentId(*next_id);
            *next_id += 1;
            intents.push(Intent {
                id,
                name: name.clone(),
                required_entities: required,
                optional_entities: Vec::new(),
                response_template: format!(
                    "Here are the {}{} for {{entities}}:\n{{results}}",
                    topic,
                    if topic.ends_with('s') { "" } else { "s" }
                ),
                goal: IntentGoal::Query(patterns.clone()),
            });
        }
        missing
    }

    /// Converts the labelled prior queries into training examples. Queries
    /// whose intent name does not resolve are returned in the error list.
    pub fn training_examples(
        &self,
        intents: &[Intent],
    ) -> (Vec<TrainingExample>, Vec<LabelledQuery>) {
        let mut out = Vec::new();
        let mut unresolved = Vec::new();
        for q in &self.labelled_queries {
            match intents.iter().find(|i| i.name == q.intent_name) {
                Some(i) => out.push(TrainingExample {
                    text: q.text.clone(),
                    intent: i.id,
                    source: ExampleSource::SmeAugmented,
                }),
                None => unresolved.push(q.clone()),
            }
        }
        (out, unresolved)
    }

    /// Merges the synonym additions into a dictionary.
    pub fn apply_synonyms(&self, dict: &mut SynonymDict) {
        for (canonical, synonyms) in &self.synonyms {
            let refs: Vec<&str> = synonyms.iter().map(String::as_str).collect();
            dict.add(canonical.clone(), &refs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intents::IntentId;
    use crate::patterns::PatternKind;
    use crate::testutil::fig2_fixture;

    fn dummy_intent(id: u32, name: &str) -> Intent {
        Intent {
            id: IntentId(id),
            name: name.to_string(),
            goal: IntentGoal::ConversationManagement,
            required_entities: Vec::new(),
            optional_entities: Vec::new(),
            response_template: String::new(),
        }
    }

    #[test]
    fn pruning_removes_and_reports_missing() {
        let (onto, _, _) = fig2_fixture();
        let mut intents = vec![dummy_intent(0, "keep"), dummy_intent(1, "drop")];
        let fb = SmeFeedback::new().prune("drop").prune("ghost");
        let mut next = 2;
        let missing = fb.apply_to_intents(&mut intents, &mut next, &onto);
        assert_eq!(intents.len(), 1);
        assert_eq!(intents[0].name, "keep");
        assert_eq!(missing, vec!["ghost".to_string()]);
    }

    #[test]
    fn rename_applies() {
        let (onto, _, _) = fig2_fixture();
        let mut intents = vec![dummy_intent(0, "Precautions of Drug")];
        let fb = SmeFeedback::new().rename("Precautions of Drug", "Drug Precautions");
        let mut next = 1;
        fb.apply_to_intents(&mut intents, &mut next, &onto);
        assert_eq!(intents[0].name, "Drug Precautions");
    }

    #[test]
    fn additional_intent_gets_fresh_id() {
        let (onto, _, _) = fig2_fixture();
        let drug = onto.concept_id("Drug").unwrap();
        let ind = onto.concept_id("Indication").unwrap();
        let pattern = QueryPattern {
            kind: PatternKind::Lookup,
            focus: ind,
            required: vec![drug],
            intermediates: vec![],
            relation_phrase: None,
            topic: "Uses".into(),
            derived_from: None,
        };
        let mut intents = vec![dummy_intent(0, "existing")];
        let fb = SmeFeedback::new().additional_intent("Uses of Drug", vec![pattern]);
        let mut next = 1;
        fb.apply_to_intents(&mut intents, &mut next, &onto);
        assert_eq!(intents.len(), 2);
        assert_eq!(intents[1].id, IntentId(1));
        assert_eq!(next, 2);
        assert!(intents[1].is_query());
    }

    #[test]
    fn labelled_queries_resolve_after_rename() {
        let (onto, _, _) = fig2_fixture();
        let mut intents = vec![dummy_intent(0, "Precautions of Drug")];
        let fb = SmeFeedback::new()
            .rename("Precautions of Drug", "Drug Precautions")
            .labelled_query("Drug Precautions", "is aspirin safe to give")
            .labelled_query("Nonexistent", "hello");
        let mut next = 1;
        fb.apply_to_intents(&mut intents, &mut next, &onto);
        let (examples, unresolved) = fb.training_examples(&intents);
        assert_eq!(examples.len(), 1);
        assert_eq!(examples[0].source, ExampleSource::SmeAugmented);
        assert_eq!(unresolved.len(), 1);
    }

    #[test]
    fn synonyms_merge_into_dict() {
        let fb = SmeFeedback::new()
            .synonym("Adverse Effect", &["side effect", "AE"])
            .synonym("Drug", &["medication"]);
        let mut dict = SynonymDict::new();
        fb.apply_synonyms(&mut dict);
        assert_eq!(dict.synonyms_of("adverse effect").len(), 2);
        assert_eq!(dict.synonyms_of("drug").len(), 1);
    }
}
