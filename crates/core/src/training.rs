//! Automatic generation of intent-training examples (paper §4.3, Figs 7–8).
//!
//! For every query pattern, natural-language examples are produced by
//! combining (a) a paraphrase *frame* appropriate for the pattern kind,
//! (b) the pattern's topic / relationship verbalisation, and (c) instance
//! values of the required concepts pulled from the knowledge base. SMEs can
//! augment the generated set with labelled prior user queries
//! ([`crate::sme`]).

use obcs_kb::stats::sample_values;
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::entities::SynonymDict;
use crate::intents::{Intent, IntentGoal, IntentId};
use crate::patterns::PatternKind;

/// A labelled training example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingExample {
    pub text: String,
    pub intent: IntentId,
    /// Whether the example was generated automatically or supplied by an
    /// SME from prior user queries (Fig. 8).
    pub source: ExampleSource,
}

/// Provenance of a training example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExampleSource {
    Generated,
    SmeAugmented,
}

/// Configuration of the generation process.
#[derive(Debug, Clone, Copy)]
pub struct TrainingGenConfig {
    /// Number of examples to generate per pattern.
    pub examples_per_pattern: usize,
    /// Max distinct instance values sampled per required concept.
    pub instances_per_concept: usize,
    /// RNG seed (frame and instance choice).
    pub seed: u64,
}

impl Default for TrainingGenConfig {
    fn default() -> Self {
        TrainingGenConfig { examples_per_pattern: 16, instances_per_concept: 512, seed: 20200614 }
    }
}

/// Initial-phrase paraphrases for lookup patterns (paper Fig. 7: "Show me",
/// "Tell me about", "Give me", ...).
pub const LOOKUP_PHRASES: &[&str] = &[
    "Show me the",
    "Give me the",
    "Tell me about the",
    "What are the",
    "List the",
    "Find the",
    "I want to see the",
    "Display the",
    "Can you show me the",
    "Do you have the",
];

/// Surface frames per pattern kind. `{ip}` = initial phrase, `{topic}` =
/// requested info, `{rel}` = relationship phrase, `{a}`/`{b}` = instance
/// values, `{inter}` = intermediate concept phrase.
const LOOKUP_FRAMES: &[&str] = &[
    "{ip} {topic} for {a}?",
    "{ip} {topic} of {a}",
    "{topic} for {a}",
    "{a} {topic}",
    "what {topic} does {a} have",
    "are there {topic} for {a}?",
];

const DIRECT_FRAMES: &[&str] = &[
    "what {topic} {rel} {a}?",
    "which {topic} {rel} {a}",
    "{topic} that {rel} {a}",
    "show me {topic} that {rel} {a}",
    "give me every {topic} that {rel} {a}",
    "find {topic} {rel} {a}",
];

const INVERSE_FRAMES: &[&str] = &[
    "what {topic} {rel} {a}?",
    "which {topic} {rel} {a}",
    "show me the {topic} {rel} {a}",
    "list {topic} {rel} {a}",
];

const INDIRECT_ONE_FRAMES: &[&str] = &[
    "give me the {topic} and its {inter} that {rel} {a}",
    "{topic} and {inter} for {a}",
    "show me {topic} with {inter} that {rel} {a}",
    "what {topic} and {inter} {rel} {a}?",
];

const INDIRECT_TWO_FRAMES: &[&str] = &[
    "give me the {inter} for {a} that {rel} {b}",
    "{inter} of {a} for {b}",
    "show me the {inter} for {a} treating {b}",
    "what is the {inter} for {a} for {b}",
];

/// Generates training examples for one intent.
pub fn generate_for_intent(
    intent: &Intent,
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    synonyms: &SynonymDict,
    config: TrainingGenConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<TrainingExample> {
    let IntentGoal::Query(patterns) = &intent.goal else {
        return entity_only_examples(intent, onto, kb, mapping, config, rng);
    };
    let mut out = Vec::new();
    // Budget per pattern: intents grounded on several augmented patterns
    // (union/inheritance) share one intent-level budget so the classifier's
    // class sizes stay balanced.
    let per_pattern = ((config.examples_per_pattern * 3 / 2) / patterns.len().max(1)).max(4);
    for pattern in patterns {
        let frames = frames_for(pattern.kind, pattern.required.len());
        let instance_pools: Vec<Vec<String>> = pattern
            .required
            .iter()
            .map(|&c| instance_values(onto, kb, mapping, c, config.instances_per_concept))
            .collect();
        if instance_pools.iter().any(Vec::is_empty) {
            continue; // cannot ground the pattern without instances
        }
        // Topic paraphrases: the concept name plus its domain synonyms
        // (§4.5 — synonyms are crucial for recall; "side effects" must
        // train the Adverse Effects intent).
        let mut topics = vec![pattern.topic.to_lowercase()];
        topics.extend(synonyms.synonyms_of(&pattern.topic).iter().map(|s| s.to_lowercase()));
        let mut seen = std::collections::HashSet::new();
        let mut attempts = 0;
        while seen.len() < per_pattern && attempts < per_pattern * 8 {
            attempts += 1;
            let frame = frames[rng.gen_range(0..frames.len())];
            let ip = LOOKUP_PHRASES[rng.gen_range(0..LOOKUP_PHRASES.len())];
            let a = instance_pools[0].choose(rng).expect("pool non-empty").clone();
            let b = instance_pools
                .get(1)
                .map(|p| p.choose(rng).expect("pool non-empty").clone())
                .unwrap_or_default();
            let inter = pattern
                .intermediates
                .iter()
                .map(|&c| lower_spaced(onto.concept_name(c)))
                .collect::<Vec<_>>()
                .join(" and ");
            // Relation names may be camelCase ontology identifiers
            // (`dosageFor`); verbalise them as words.
            let rel = pattern.relation_phrase.as_deref().map(lower_spaced).unwrap_or_default();
            let topic = &topics[rng.gen_range(0..topics.len())];
            let text = frame
                .replace("{ip}", ip)
                .replace("{topic}", topic)
                .replace("{rel}", &rel)
                .replace("{inter}", &inter)
                .replace("{a}", &a)
                .replace("{b}", &b)
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            if seen.insert(text.clone()) {
                out.push(TrainingExample {
                    text,
                    intent: intent.id,
                    source: ExampleSource::Generated,
                });
            }
        }
    }
    out
}

/// Generates keyword-style examples for an entity-only intent: bare
/// instance mentions, optionally with a trailing question mark.
fn entity_only_examples(
    intent: &Intent,
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    config: TrainingGenConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<TrainingExample> {
    let IntentGoal::EntityOnly(concept) = intent.goal else {
        return Vec::new();
    };
    let pool = instance_values(onto, kb, mapping, concept, config.instances_per_concept);
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..config.examples_per_pattern * 4 {
        if seen.len() >= config.examples_per_pattern {
            break;
        }
        let Some(v) = pool.choose(rng) else { break };
        let text = match rng.gen_range(0..3) {
            0 => v.to_lowercase(),
            1 => v.clone(),
            _ => format!("{v}?"),
        };
        if seen.insert(text.clone()) {
            out.push(TrainingExample { text, intent: intent.id, source: ExampleSource::Generated });
        }
    }
    out
}

/// Generates examples for every intent with one shared seeded RNG.
pub fn generate_all(
    intents: &[Intent],
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    synonyms: &SynonymDict,
    config: TrainingGenConfig,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    intents
        .iter()
        .flat_map(|i| generate_for_intent(i, onto, kb, mapping, synonyms, config, &mut rng))
        .collect()
}

fn frames_for(kind: PatternKind, required: usize) -> &'static [&'static str] {
    match kind {
        PatternKind::Lookup => LOOKUP_FRAMES,
        PatternKind::DirectRelationship => DIRECT_FRAMES,
        PatternKind::InverseRelationship => INVERSE_FRAMES,
        PatternKind::IndirectRelationship if required >= 2 => INDIRECT_TWO_FRAMES,
        PatternKind::IndirectRelationship => INDIRECT_ONE_FRAMES,
    }
}

/// Instance values of a concept, resolved through the mapping. For an
/// abstract concept (no table), falls back to its union members / isA
/// children.
pub fn instance_values(
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    concept: ConceptId,
    limit: usize,
) -> Vec<String> {
    if let (Some(table), Some(label)) = (mapping.table(concept), mapping.label(concept)) {
        if let Ok(values) = sample_values(kb, table, label, limit) {
            let texts: Vec<String> =
                values.iter().filter_map(|v| v.as_text().map(str::to_string)).collect();
            if !texts.is_empty() {
                return texts;
            }
        }
    }
    let mut related = onto.union_members(concept);
    related.extend(onto.is_a_children(concept));
    let mut out = Vec::new();
    for r in related {
        out.extend(instance_values(onto, kb, mapping, r, limit));
        if out.len() >= limit {
            break;
        }
    }
    out.truncate(limit);
    out
}

fn lower_spaced(name: &str) -> String {
    crate::patterns::spaced(name).to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{identify_dependent_concepts, identify_key_concepts, KeyConceptConfig};
    use crate::intents::{build_intents, entity_only_intent};
    use crate::patterns::{direct_relationship_patterns, lookup_patterns};
    use crate::testutil::fig2_fixture;
    use obcs_kb::stats::CategoricalPolicy;

    fn setup() -> (Ontology, KnowledgeBase, OntologyMapping, Vec<Intent>) {
        let (onto, kb, mapping) = fig2_fixture();
        let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
        let deps =
            identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
        let lookups = lookup_patterns(&onto, &deps);
        let rels = direct_relationship_patterns(&onto, &keys);
        let mut next = 0;
        let intents = build_intents(&onto, lookups, rels, &mut next);
        (onto, kb, mapping, intents)
    }

    #[test]
    fn examples_are_generated_and_labelled() {
        let (onto, kb, mapping, intents) = setup();
        let examples = generate_all(
            &intents,
            &onto,
            &kb,
            &mapping,
            &SynonymDict::new(),
            TrainingGenConfig::default(),
        );
        assert!(!examples.is_empty());
        // Every query intent got some examples.
        for i in intents.iter().filter(|i| i.is_query()) {
            let n = examples.iter().filter(|e| e.intent == i.id).count();
            assert!(n > 0, "intent `{}` has no examples", i.name);
        }
        // Examples mention real instance values.
        assert!(examples
            .iter()
            .any(|e| e.text.contains("Aspirin") || e.text.contains("Ibuprofen")));
    }

    #[test]
    fn generation_is_deterministic() {
        let (onto, kb, mapping, intents) = setup();
        let cfg = TrainingGenConfig::default();
        let a = generate_all(&intents, &onto, &kb, &mapping, &SynonymDict::new(), cfg);
        let b = generate_all(&intents, &onto, &kb, &mapping, &SynonymDict::new(), cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn examples_are_unique_per_intent() {
        let (onto, kb, mapping, intents) = setup();
        let examples = generate_all(
            &intents,
            &onto,
            &kb,
            &mapping,
            &SynonymDict::new(),
            TrainingGenConfig::default(),
        );
        for i in &intents {
            let texts: Vec<&str> =
                examples.iter().filter(|e| e.intent == i.id).map(|e| e.text.as_str()).collect();
            let mut deduped = texts.clone();
            deduped.sort_unstable();
            deduped.dedup();
            assert_eq!(texts.len(), deduped.len());
        }
    }

    #[test]
    fn union_intent_examples_cover_member_topics() {
        let (onto, kb, mapping, intents) = setup();
        let risk = onto.concept_id("Risk").unwrap();
        let risk_intent =
            intents.iter().find(|i| i.patterns().first().map(|p| p.focus) == Some(risk)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let examples = generate_for_intent(
            risk_intent,
            &onto,
            &kb,
            &mapping,
            &SynonymDict::new(),
            TrainingGenConfig::default(),
            &mut rng,
        );
        let all = examples.iter().map(|e| e.text.as_str()).collect::<Vec<_>>().join(" | ");
        assert!(all.contains("risk"), "{all}");
        assert!(all.contains("contra indication"), "{all}");
        assert!(all.contains("black box warning"), "{all}");
    }

    #[test]
    fn entity_only_examples_are_bare_names() {
        let (onto, kb, mapping, _) = setup();
        let drug = onto.concept_id("Drug").unwrap();
        let mut next = 50;
        let intent = entity_only_intent(&onto, drug, &mut next);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let examples = generate_for_intent(
            &intent,
            &onto,
            &kb,
            &mapping,
            &SynonymDict::new(),
            TrainingGenConfig::default(),
            &mut rng,
        );
        assert!(!examples.is_empty());
        for e in &examples {
            assert!(e.text.split_whitespace().count() <= 2, "keyword-ish: {}", e.text);
        }
    }

    #[test]
    fn abstract_concept_instances_fall_back_to_members() {
        let (onto, kb, mapping, _) = setup();
        // Risk has a table in the fixture; test the fallback with a fresh
        // abstract parent.
        let di = onto.concept_id("DrugInteraction").unwrap();
        let vals = instance_values(&onto, &kb, &mapping, di, 10);
        assert!(!vals.is_empty(), "falls back through table or children");
    }

    #[test]
    fn no_instances_means_no_examples() {
        let (onto, _, mapping, intents) = setup();
        let empty_kb = KnowledgeBase::new();
        let examples = generate_all(
            &intents,
            &onto,
            &empty_kb,
            &mapping,
            &SynonymDict::new(),
            TrainingGenConfig::default(),
        );
        assert!(examples.is_empty());
    }
}
