//! # obcs-core
//!
//! The paper's primary contribution: **bootstrapping a conversation space
//! from a domain ontology** (SIGMOD'20, §4). Given a domain ontology and
//! the knowledge base it describes, this crate automatically derives every
//! artifact a conversation system needs:
//!
//! * **Key concepts** (§4.2.1) — centrality analysis over the ontology
//!   graph plus statistical segregation picks the standalone domain
//!   entities users ask about ([`concepts`]).
//! * **Dependent concepts** — neighbourhood concepts whose instance data
//!   behaves categorically, describing attributes of a key concept; union
//!   and inheritance semantics are detected and handled ([`concepts`]).
//! * **Query patterns** (§4.2.1, Figs. 3–6) — lookup patterns (with
//!   union/inheritance augmentation), direct relationship patterns
//!   (forward and inverse), and indirect multi-hop relationship patterns
//!   ([`patterns`]).
//! * **Intents** — one per pattern family, with required/optional entities
//!   and response templates ([`intents`]).
//! * **Training examples** (§4.3, Figs. 7–8) — generated from paraphrase
//!   frames × KB instance values, with SME augmentation from prior user
//!   queries ([`training`]).
//! * **Entities and synonyms** (§4.5, Tables 1–2) — ontology concepts,
//!   hierarchy groupings, instance values, and domain synonym dictionaries
//!   ([`entities`]).
//! * **Structured query templates** (§4.4, Fig. 9) — one parameterised SQL
//!   template per pattern, produced through the NLQ service ([`templates`]).
//! * **SME feedback** (§4.2.2) — programmatic refinement: extra patterns,
//!   pruning, intent renames, labelled prior queries, synonyms ([`sme`]).
//!
//! The orchestration entry point is [`bootstrap`], which produces a
//! [`ConversationSpace`]:
//!
//! ```
//! use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
//!
//! let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
//! let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
//!
//! let inv = space.inventory();
//! assert!(inv.intents_total > 0, "bootstrapping derives intents from the ontology");
//! assert!(inv.training_examples > 0, "…and training examples for each");
//! ```
//!
//! Crate role: DESIGN.md §2; as-built notes on the bootstrapping
//! pipeline: §5.

pub mod concepts;
pub mod entities;
pub mod intents;
pub mod patterns;
pub mod sme;
pub mod sme_format;
pub mod space;
pub mod templates;
pub mod testutil;
pub mod training;

pub use concepts::{ConceptRole, DependentConcept, DependentSemantics, KeyConceptConfig};
pub use intents::{Intent, IntentId};
pub use patterns::{PatternKind, QueryPattern};
pub use sme::SmeFeedback;
pub use space::{bootstrap, BootstrapConfig, ConversationSpace};
pub use training::TrainingExample;
