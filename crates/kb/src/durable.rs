//! [`DurableKb`]: a [`KnowledgeBase`] paired with its write-ahead log
//! and snapshot file (DESIGN.md §16).
//!
//! The handle owns one durability directory containing
//! [`SNAPSHOT_FILE`] and [`WAL_FILE`]. Every mutating call is applied
//! to the in-memory store *first* — the store is the validator; an
//! insert the store rejects must never reach the log — and appended to
//! the WAL second. The window between apply and append is the usual
//! write-ahead trade made explicit: a crash there loses the final
//! mutation entirely (prefix consistency) rather than ever replaying a
//! half-applied or invalid record.
//!
//! [`DurableKb::snapshot`] compacts: it writes an atomic point-in-time
//! snapshot and resets the log, after which recovery cost is
//! proportional to the mutations since the last snapshot, not since
//! the beginning of time.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::index::IndexKind;
use crate::schema::TableSchema;
use crate::snapshot::{self, RecoveryReport};
use crate::store::KnowledgeBase;
use crate::value::Value;
use crate::wal::{DurabilityError, Wal, WalRecord};

/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "kb.snapshot";

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "kb.wal";

/// A knowledge base whose mutations are durable: apply in memory, then
/// log; recover by snapshot + WAL replay.
pub struct DurableKb {
    kb: KnowledgeBase,
    wal: Wal,
    snapshot_path: PathBuf,
    /// Records appended since the last snapshot (compaction signal).
    pending: usize,
}

impl fmt::Debug for DurableKb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableKb")
            .field("snapshot_path", &self.snapshot_path)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

impl DurableKb {
    /// Starts a fresh durability directory from `kb`: writes an initial
    /// snapshot and an empty WAL (discarding any stale files from an
    /// earlier incarnation).
    pub fn create(dir: impl AsRef<Path>, kb: KnowledgeBase) -> Result<DurableKb, DurabilityError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        kb.snapshot_to(&snapshot_path)?;
        let (mut wal, _) = Wal::open(dir.join(WAL_FILE))?;
        wal.reset()?;
        Ok(DurableKb { kb, wal, snapshot_path, pending: 0 })
    }

    /// Recovers from an existing durability directory: snapshot + WAL
    /// replay with torn-tail truncation (see
    /// [`KnowledgeBase::recover_from`]). The returned handle keeps the
    /// log open, positioned to append after the last intact record.
    pub fn open(dir: impl AsRef<Path>) -> Result<(DurableKb, RecoveryReport), DurabilityError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (kb, wal, report) = snapshot::recover(&snapshot_path, &dir.join(WAL_FILE))?;
        let pending = report.wal_records;
        Ok((DurableKb { kb, wal, snapshot_path, pending }, report))
    }

    /// Whether `dir` holds durable state to recover (a snapshot or a
    /// WAL from an earlier run).
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        let dir = dir.as_ref();
        dir.join(SNAPSHOT_FILE).exists() || dir.join(WAL_FILE).exists()
    }

    /// The in-memory store. Mutations must go through the logged
    /// methods below, so only shared access is exposed.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Consumes the handle, returning the in-memory store (the log is
    /// closed as written; un-synced bytes are flushed by the OS).
    pub fn into_kb(self) -> KnowledgeBase {
        self.kb
    }

    /// Logged [`KnowledgeBase::create_table`].
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DurabilityError> {
        self.kb.create_table(schema.clone())?;
        self.log(WalRecord::CreateTable(schema))
    }

    /// Logged [`KnowledgeBase::insert`].
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), DurabilityError> {
        self.kb.insert(table, row.clone())?;
        self.log(WalRecord::Insert { table: table.to_string(), row })
    }

    /// Logged [`KnowledgeBase::create_index`]. No-op re-creations
    /// return `Ok(false)` without writing a record.
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<bool, DurabilityError> {
        let created = self.kb.create_index(table, column, kind)?;
        if created {
            self.log(WalRecord::CreateIndex {
                table: table.to_string(),
                column: column.to_string(),
                kind,
            })?;
        }
        Ok(created)
    }

    /// Logged [`KnowledgeBase::auto_index`]: the sweep is deterministic
    /// in KB state, so a single marker record replays it exactly.
    pub fn auto_index(&mut self) -> Result<usize, DurabilityError> {
        let created = self.kb.auto_index();
        if created > 0 {
            self.log(WalRecord::AutoIndex)?;
        }
        Ok(created)
    }

    fn log(&mut self, record: WalRecord) -> Result<(), DurabilityError> {
        self.wal.append(&record)?;
        self.pending += 1;
        Ok(())
    }

    /// fsyncs the log. Idempotent: syncing an already-synced log is a
    /// cheap no-op, so shutdown paths may call this repeatedly.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.wal.sync()
    }

    /// Compaction: writes an atomic snapshot of the current store and
    /// resets the log. Recovery afterwards replays zero records.
    pub fn snapshot(&mut self) -> Result<(), DurabilityError> {
        self.kb.snapshot_to(&self.snapshot_path)?;
        self.wal.reset()?;
        self.pending = 0;
        Ok(())
    }

    /// Records appended since the last snapshot (or open).
    pub fn pending_records(&self) -> usize {
        self.pending
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Path of the WAL file.
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("obcs_durable_{}_{tag}_{n}", std::process::id()))
    }

    fn drug_schema() -> TableSchema {
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id")
    }

    #[test]
    fn kill_style_restart_recovers_every_logged_mutation() {
        let dir = temp_dir("kill");
        let original = {
            let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
            d.create_table(drug_schema()).unwrap();
            for i in 0..10 {
                d.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).unwrap();
            }
            d.create_index("drug", "name", IndexKind::Ordered).unwrap();
            assert_eq!(d.auto_index().unwrap(), 1, "PK hash index");
            d.sync().unwrap();
            assert_eq!(d.pending_records(), 13);
            d.into_kb() // dropped without snapshot(): kill-style exit
        };
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert!(report.snapshot_loaded, "create() wrote the initial snapshot");
        assert_eq!(report.wal_records, 13);
        assert_eq!(report.auto_indexes_created, 0);
        assert_eq!(recovered.kb().to_json(), original.to_json());
        assert_eq!(recovered.kb().generation(), original.generation());
        assert_eq!(recovered.kb().schema_generation(), original.schema_generation());
        assert_eq!(recovered.kb().index_count(), original.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_mutations_never_reach_the_log() {
        let dir = temp_dir("reject");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        d.create_table(drug_schema()).unwrap();
        d.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        let pending = d.pending_records();
        assert!(d.insert("drug", vec![Value::Int(1), Value::text("dup")]).is_err());
        assert!(d.insert("nope", vec![Value::Int(1)]).is_err());
        assert_eq!(d.pending_records(), pending, "failed mutations are not logged");
        drop(d);
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, pending);
        assert_eq!(recovered.kb().table("drug").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compacts_the_log() {
        let dir = temp_dir("compact");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        d.create_table(drug_schema()).unwrap();
        for i in 0..5 {
            d.insert("drug", vec![Value::Int(i), Value::text(format!("D{i}"))]).unwrap();
        }
        d.snapshot().unwrap();
        assert_eq!(d.pending_records(), 0);
        d.insert("drug", vec![Value::Int(99), Value::text("After")]).unwrap();
        let original = d.into_kb();
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, 1, "only the post-snapshot record replays");
        assert_eq!(recovered.kb().to_json(), original.to_json());
        assert_eq!(recovered.kb().generation(), original.generation());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_discards_stale_durable_state() {
        let dir = temp_dir("stale");
        {
            let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
            d.create_table(drug_schema()).unwrap();
            d.insert("drug", vec![Value::Int(1), Value::text("Old")]).unwrap();
        }
        assert!(DurableKb::exists(&dir));
        // A fresh create over the same dir starts from the new KB alone.
        let d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        drop(d);
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, 0);
        assert!(!recovered.kb().has_table("drug"));
        std::fs::remove_dir_all(&dir).ok();
        assert!(!DurableKb::exists(&dir));
    }
}
