//! [`DurableKb`]: a [`KnowledgeBase`] paired with its write-ahead log
//! and snapshot file (DESIGN.md §16).
//!
//! The handle owns one durability directory containing
//! [`SNAPSHOT_FILE`] and [`WAL_FILE`]. Every mutating call is applied
//! to the in-memory store *first* — the store is the validator; an
//! insert the store rejects must never reach the log — and appended to
//! the WAL second. The window between apply and append is the usual
//! write-ahead trade made explicit: a crash there loses the final
//! mutation entirely (prefix consistency) rather than ever replaying a
//! half-applied or invalid record.
//!
//! # Epochs and the compaction swap
//!
//! Snapshot and WAL are paired by a **durability epoch**: the snapshot
//! header carries the epoch it was written at, the WAL header carries
//! the epoch of the snapshot it extends, and recovery replays the log
//! only when the two match (see [`KnowledgeBase::recover_from`]). The
//! handle owns the sequence — every compaction bumps it by one — so a
//! crash at *any* point between "snapshot committed" and "WAL realigned"
//! is detected by the mismatch and the already-snapshotted records are
//! discarded instead of double-applied.
//!
//! [`DurableKb::snapshot`] compacts in place. For compaction that runs
//! while the store keeps serving, the three-call protocol splits the
//! expensive part out of the lock:
//!
//! 1. [`DurableKb::begin_compaction`] (brief, under the store lock):
//!    clones the KB, opens a capture buffer for records logged while
//!    the job runs, hands back a [`CompactionJob`] at epoch `e+1`.
//! 2. [`CompactionJob::write`] (no lock): streams the clone to a tmp
//!    file beside the snapshot.
//! 3. [`DurableKb::finish_compaction`] (brief, under the lock): stages
//!    a successor WAL at `<wal>.new` carrying epoch `e+1` plus the
//!    captured delta, fsyncs it, renames the tmp snapshot into place —
//!    **the commit point** — then renames the staged WAL over the live
//!    one. Recovery settles every crash interleaving: a staged WAL
//!    whose epoch matches the snapshot means the swap committed and
//!    the rename is redone; any other staged file is residue and
//!    deleted.

use std::fmt;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

use crate::index::IndexKind;
use crate::schema::TableSchema;
use crate::snapshot::{self, RecoveryReport};
use crate::store::KnowledgeBase;
use crate::value::Value;
use crate::wal::{self, DurabilityError, Wal, WalRecord};

/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "kb.snapshot";

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "kb.wal";

/// A knowledge base whose mutations are durable: apply in memory, then
/// log; recover by snapshot + WAL replay.
pub struct DurableKb {
    kb: KnowledgeBase,
    wal: Wal,
    snapshot_path: PathBuf,
    /// The current durability epoch: the epoch of the live snapshot,
    /// which the live WAL extends. Bumped by every compaction.
    epoch: u64,
    /// Records appended since the last snapshot (compaction signal).
    pending: usize,
    /// While a [`CompactionJob`] is outstanding, every logged record is
    /// also captured here — the delta the job's snapshot does not
    /// contain, carried over into the successor WAL.
    capture: Option<Vec<WalRecord>>,
}

impl fmt::Debug for DurableKb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableKb")
            .field("snapshot_path", &self.snapshot_path)
            .field("epoch", &self.epoch)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

/// An in-flight background compaction: a point-in-time clone of the KB
/// pinned at the epoch it will commit as. Produced by
/// [`DurableKb::begin_compaction`]; the expensive [`CompactionJob::write`]
/// runs without any lock on the live store.
pub struct CompactionJob {
    kb: KnowledgeBase,
    epoch: u64,
    tmp: PathBuf,
}

impl fmt::Debug for CompactionJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompactionJob")
            .field("epoch", &self.epoch)
            .field("tmp", &self.tmp)
            .finish_non_exhaustive()
    }
}

impl CompactionJob {
    /// Streams the job's KB clone to its tmp file and fsyncs it. Runs
    /// entirely on the clone — call this *outside* any lock guarding
    /// the live [`DurableKb`].
    pub fn write(&self) -> Result<(), DurabilityError> {
        snapshot::write_snapshot_file(&self.kb, &self.tmp, self.epoch)
    }

    /// The epoch this job will commit as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl DurableKb {
    /// Starts a fresh durability directory from `kb`: writes an initial
    /// snapshot and an empty WAL (discarding any stale files from an
    /// earlier incarnation).
    pub fn create(dir: impl AsRef<Path>, kb: KnowledgeBase) -> Result<DurableKb, DurabilityError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        // Residue of an earlier incarnation's interrupted compaction
        // must go first: a stale staged WAL could otherwise collide
        // with the epoch chosen below and be mistaken for a committed
        // swap on the next recovery.
        std::fs::remove_file(wal::swap_path(&wal_path)).ok();
        std::fs::remove_file(snapshot_path.with_extension("compact")).ok();
        // Start above every epoch any stale file wears, so the crash
        // window below (snapshot committed, WAL not yet realigned) is
        // caught by the mismatch instead of replaying the old log.
        let epoch = snapshot::peek_epoch(&snapshot_path)
            .into_iter()
            .chain(Wal::peek_epoch(&wal_path))
            .max()
            .map_or(0, |stale| stale + 1);
        snapshot::write_snapshot(&kb, &snapshot_path, epoch)?;
        let (mut wal, _) = Wal::open(&wal_path)?;
        wal.reset(epoch)?;
        Ok(DurableKb { kb, wal, snapshot_path, epoch, pending: 0, capture: None })
    }

    /// Recovers from an existing durability directory: snapshot + WAL
    /// replay with torn-tail truncation and the epoch check (see
    /// [`KnowledgeBase::recover_from`]). The returned handle keeps the
    /// log open, positioned to append after the last intact record.
    pub fn open(dir: impl AsRef<Path>) -> Result<(DurableKb, RecoveryReport), DurabilityError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        // An interrupted CompactionJob::write leaves a tmp image that
        // never committed; it is dead weight on disk.
        std::fs::remove_file(snapshot_path.with_extension("compact")).ok();
        let (kb, wal, report) = snapshot::recover(&snapshot_path, &dir.join(WAL_FILE))?;
        let pending = report.wal_records;
        let epoch = report.epoch;
        Ok((DurableKb { kb, wal, snapshot_path, epoch, pending, capture: None }, report))
    }

    /// Whether `dir` holds durable state to recover (a snapshot or a
    /// WAL from an earlier run).
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        let dir = dir.as_ref();
        dir.join(SNAPSHOT_FILE).exists() || dir.join(WAL_FILE).exists()
    }

    /// The in-memory store. Mutations must go through the logged
    /// methods below, so only shared access is exposed.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Consumes the handle, returning the in-memory store (the log is
    /// closed as written; un-synced bytes are flushed by the OS).
    pub fn into_kb(self) -> KnowledgeBase {
        self.kb
    }

    /// Logged [`KnowledgeBase::create_table`].
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DurabilityError> {
        self.kb.create_table(schema.clone())?;
        self.log(WalRecord::CreateTable(schema))
    }

    /// Logged [`KnowledgeBase::insert`].
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), DurabilityError> {
        self.kb.insert(table, row.clone())?;
        self.log(WalRecord::Insert { table: table.to_string(), row })
    }

    /// Logged [`KnowledgeBase::create_index`]. No-op re-creations
    /// return `Ok(false)` without writing a record.
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<bool, DurabilityError> {
        let created = self.kb.create_index(table, column, kind)?;
        if created {
            self.log(WalRecord::CreateIndex {
                table: table.to_string(),
                column: column.to_string(),
                kind,
            })?;
        }
        Ok(created)
    }

    /// Logged [`KnowledgeBase::auto_index`]: the sweep is deterministic
    /// in KB state, so a single marker record replays it exactly.
    pub fn auto_index(&mut self) -> Result<usize, DurabilityError> {
        let created = self.kb.auto_index();
        if created > 0 {
            self.log(WalRecord::AutoIndex)?;
        }
        Ok(created)
    }

    fn log(&mut self, record: WalRecord) -> Result<(), DurabilityError> {
        self.wal.append(&record)?;
        self.pending += 1;
        if let Some(capture) = &mut self.capture {
            capture.push(record);
        }
        Ok(())
    }

    /// fsyncs the log. Idempotent: syncing an already-synced log is a
    /// cheap no-op, so shutdown paths may call this repeatedly.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.wal.sync()
    }

    /// Compaction, in place: snapshot at the next epoch, realign the
    /// log. Recovery afterwards replays zero records. Runs the same
    /// swap protocol as background compaction, with the store
    /// exclusively borrowed throughout (so the delta is empty by
    /// construction).
    pub fn snapshot(&mut self) -> Result<(), DurabilityError> {
        let job = self.begin_compaction();
        job.write()?;
        let committed = self.finish_compaction(job)?;
        debug_assert!(committed, "no interleaving is possible under &mut self");
        Ok(())
    }

    /// Opens a background compaction at epoch `current + 1`: clones the
    /// store (the only expensive step under the lock) and starts
    /// capturing subsequently logged records as the delta. A second
    /// `begin_compaction` before the first finishes supersedes it — the
    /// older job's [`DurableKb::finish_compaction`] will report
    /// `Ok(false)`.
    pub fn begin_compaction(&mut self) -> CompactionJob {
        self.capture = Some(Vec::new());
        CompactionJob {
            kb: self.kb.clone(),
            epoch: self.epoch + 1,
            tmp: self.snapshot_path.with_extension("compact"),
        }
    }

    /// Commits a written [`CompactionJob`]: stages the successor WAL
    /// (job epoch + captured delta) at `<wal>.new`, publishes the
    /// snapshot by rename — the commit point — then renames the staged
    /// log over the live one. Returns `Ok(false)` without touching
    /// anything durable when the job no longer extends the current
    /// epoch (an interleaved [`DurableKb::snapshot`] or a newer job
    /// superseded it).
    pub fn finish_compaction(&mut self, job: CompactionJob) -> Result<bool, DurabilityError> {
        let delta = self.capture.take().unwrap_or_default();
        if job.epoch != self.epoch + 1 {
            std::fs::remove_file(&job.tmp).ok();
            return Ok(false);
        }
        let live_path = self.wal.path().to_path_buf();
        let swap = wal::swap_path(&live_path);
        let mut staged = Wal::create(&swap, job.epoch)?;
        for record in &delta {
            staged.append(record)?;
        }
        staged.sync()?;
        // Commit point: before this rename, recovery sees the old
        // snapshot + old WAL (the staged file is deleted as residue);
        // after it, the new snapshot + the staged delta (the rename
        // below is redone by recovery if we crash first).
        snapshot::commit_snapshot(&job.tmp, &self.snapshot_path)?;
        std::fs::rename(&swap, &live_path)?;
        if let Some(dir) = live_path.parent() {
            if let Ok(d) = OpenOptions::new().read(true).open(dir) {
                let _ = d.sync_all();
            }
        }
        staged.set_path(live_path);
        self.wal = staged;
        self.epoch = job.epoch;
        self.pending = delta.len();
        Ok(true)
    }

    /// The current durability epoch (of the live snapshot + WAL pair).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records appended since the last snapshot (or open).
    pub fn pending_records(&self) -> usize {
        self.pending
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Path of the WAL file.
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("obcs_durable_{}_{tag}_{n}", std::process::id()))
    }

    fn drug_schema() -> TableSchema {
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id")
    }

    #[test]
    fn kill_style_restart_recovers_every_logged_mutation() {
        let dir = temp_dir("kill");
        let original = {
            let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
            d.create_table(drug_schema()).unwrap();
            for i in 0..10 {
                d.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).unwrap();
            }
            d.create_index("drug", "name", IndexKind::Ordered).unwrap();
            assert_eq!(d.auto_index().unwrap(), 1, "PK hash index");
            d.sync().unwrap();
            assert_eq!(d.pending_records(), 13);
            d.into_kb() // dropped without snapshot(): kill-style exit
        };
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert!(report.snapshot_loaded, "create() wrote the initial snapshot");
        assert_eq!(report.wal_records, 13);
        assert_eq!(report.wal_discarded_records, 0);
        assert_eq!(report.auto_indexes_created, 0);
        assert_eq!(recovered.kb().to_json(), original.to_json());
        assert_eq!(recovered.kb().generation(), original.generation());
        assert_eq!(recovered.kb().schema_generation(), original.schema_generation());
        assert_eq!(recovered.kb().index_count(), original.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_mutations_never_reach_the_log() {
        let dir = temp_dir("reject");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        d.create_table(drug_schema()).unwrap();
        d.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        let pending = d.pending_records();
        assert!(d.insert("drug", vec![Value::Int(1), Value::text("dup")]).is_err());
        assert!(d.insert("nope", vec![Value::Int(1)]).is_err());
        assert_eq!(d.pending_records(), pending, "failed mutations are not logged");
        drop(d);
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, pending);
        assert_eq!(recovered.kb().table("drug").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compacts_the_log_and_bumps_the_epoch() {
        let dir = temp_dir("compact");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        assert_eq!(d.epoch(), 0);
        d.create_table(drug_schema()).unwrap();
        for i in 0..5 {
            d.insert("drug", vec![Value::Int(i), Value::text(format!("D{i}"))]).unwrap();
        }
        d.snapshot().unwrap();
        assert_eq!(d.pending_records(), 0);
        assert_eq!(d.epoch(), 1);
        d.insert("drug", vec![Value::Int(99), Value::text("After")]).unwrap();
        let original = d.into_kb();
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, 1, "only the post-snapshot record replays");
        assert_eq!(report.epoch, 1);
        assert_eq!(recovered.kb().to_json(), original.to_json());
        assert_eq!(recovered.kb().generation(), original.generation());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_snapshot_and_wal_reset_never_double_applies() {
        let dir = temp_dir("crash_window");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        d.create_table(drug_schema()).unwrap();
        for i in 0..6 {
            d.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).unwrap();
        }
        d.sync().unwrap();
        let oracle = d.kb().clone();
        let stale_records = d.pending_records();
        assert!(stale_records > 0);
        // Simulate the PR-9 crash window: the next-epoch snapshot
        // commits, then the process dies before the WAL is realigned —
        // a fresh snapshot sitting next to a stale log whose records
        // the snapshot already contains.
        let next_epoch = d.epoch() + 1;
        snapshot::write_snapshot(d.kb(), d.snapshot_path(), next_epoch).unwrap();
        drop(d); // no wal.reset(): the crash

        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.epoch, next_epoch);
        assert_eq!(report.wal_records, 0, "stale records must not replay");
        assert_eq!(report.wal_discarded_records, stale_records, "…and the discard is reported");
        assert!(report.wal_discard_reason.is_some());
        assert_eq!(
            recovered.kb().to_json(),
            oracle.to_json(),
            "exactly the oracle — no duplicates"
        );
        assert_eq!(recovered.kb().table("drug").unwrap().len(), 6);
        assert_eq!(recovered.epoch(), next_epoch);
        // The recovered handle keeps working at the realigned epoch.
        let mut recovered = recovered;
        recovered.insert("drug", vec![Value::Int(100), Value::text("Post")]).unwrap();
        drop(recovered);
        let (again, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, 1);
        assert_eq!(report.wal_discarded_records, 0);
        assert_eq!(again.kb().table("drug").unwrap().len(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_compaction_preserves_records_logged_while_it_runs() {
        let dir = temp_dir("bg");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        d.create_table(drug_schema()).unwrap();
        for i in 0..4 {
            d.insert("drug", vec![Value::Int(i), Value::text(format!("D{i}"))]).unwrap();
        }
        let job = d.begin_compaction();
        // Mutations landing while the job streams its clone: they are
        // not in the job's snapshot and must survive as the delta.
        d.insert("drug", vec![Value::Int(50), Value::text("MidA")]).unwrap();
        d.insert("drug", vec![Value::Int(51), Value::text("MidB")]).unwrap();
        job.write().unwrap();
        assert!(d.finish_compaction(job).unwrap());
        assert_eq!(d.epoch(), 1);
        assert_eq!(d.pending_records(), 2, "the delta is the new log");
        d.insert("drug", vec![Value::Int(60), Value::text("Post")]).unwrap();
        d.sync().unwrap();
        let original = d.into_kb();
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.wal_records, 3, "two delta records + one post-compaction");
        assert_eq!(report.wal_discarded_records, 0);
        assert_eq!(recovered.kb().to_json(), original.to_json());
        assert_eq!(recovered.kb().table("drug").unwrap().len(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn superseded_compaction_job_is_abandoned_cleanly() {
        let dir = temp_dir("superseded");
        let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        d.create_table(drug_schema()).unwrap();
        d.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        let job = d.begin_compaction();
        job.write().unwrap();
        // An interleaved in-place snapshot claims the job's epoch first.
        d.snapshot().unwrap();
        assert_eq!(d.epoch(), 1);
        assert!(!d.finish_compaction(job).unwrap(), "the stale job must not commit");
        assert_eq!(d.epoch(), 1, "epoch untouched by the abandoned job");
        d.insert("drug", vec![Value::Int(2), Value::text("B")]).unwrap();
        let original = d.into_kb();
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.wal_records, 1);
        assert_eq!(recovered.kb().to_json(), original.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_discards_stale_durable_state() {
        let dir = temp_dir("stale");
        {
            let mut d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
            d.create_table(drug_schema()).unwrap();
            d.insert("drug", vec![Value::Int(1), Value::text("Old")]).unwrap();
            d.snapshot().unwrap(); // leave a non-zero epoch behind
        }
        assert!(DurableKb::exists(&dir));
        // A fresh create over the same dir starts from the new KB alone,
        // at an epoch above everything the stale files wear.
        let d = DurableKb::create(&dir, KnowledgeBase::new()).unwrap();
        assert_eq!(d.epoch(), 2, "stale epoch 1 is skipped past");
        drop(d);
        let (recovered, report) = DurableKb::open(&dir).unwrap();
        assert_eq!(report.wal_records, 0);
        assert!(!recovered.kb().has_table("drug"));
        std::fs::remove_dir_all(&dir).ok();
        assert!(!DurableKb::exists(&dir));
    }
}
