//! Point-in-time KB snapshots and epoch-checked recovery (DESIGN.md
//! §16).
//!
//! Two snapshot formats exist. The current **binary streamed** format:
//!
//! ```text
//! OBCSSNB1 [u64 epoch LE]
//!   section: meta            [u64 data_gen] [u64 schema_gen] [u32 table_count]
//!   per table (sorted by name):
//!     section: table header  name, schema JSON, index specs, row count
//!     section*: row chunks   [u32 rows] then rows, values tag-encoded
//! ```
//!
//! where every `section` is `[u32 len LE] [u32 crc32 LE] [payload]`.
//! Values are encoded directly from their in-memory form (one tag byte
//! plus a fixed-width integer/float or length-prefixed text) — no JSON
//! string round-trips — and both sides stream through
//! `BufWriter`/`BufReader` in bounded chunks, so neither writing nor
//! reading materialises the whole image. The header's **epoch** pairs
//! the snapshot with the WAL that extends it: recovery replays the log
//! only when the epochs match, which is what makes the
//! snapshot-then-reset compaction sequence crash-safe (see
//! [`crate::wal`]).
//!
//! The legacy **JSON** format (`OBCSSNP1`: the KB's JSON envelope in a
//! single checksummed frame) is still readable for recovery of
//! pre-epoch durability directories; it is no longer written on the
//! durable path.
//!
//! Snapshots are committed atomically — stream to `<path>.tmp`, fsync,
//! rename over `<path>` — so a crash mid-snapshot leaves the previous
//! snapshot intact. A torn *snapshot* therefore never occurs on the
//! normal path, and [`read_snapshot`] treats any frame damage, in
//! either format, as hard corruption rather than something to silently
//! truncate (unlike the WAL tail, where torn frames are the expected
//! crash residue).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::index::{IndexKind, IndexSpec};
use crate::schema::TableSchema;
use crate::store::{GenerationStamp, KnowledgeBase, Table};
use crate::value::{FiniteF64, Value};
use crate::wal::{self, crc32, DurabilityError, Wal, MAX_RECORD_BYTES};

/// Magic header identifying a legacy JSON snapshot (format version 1).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"OBCSSNP1";

/// Magic header identifying a binary streamed snapshot. The magic is
/// followed by a little-endian u64 durability epoch.
pub const SNAPSHOT_MAGIC_BINARY: &[u8; 8] = b"OBCSSNB1";

/// Target payload size of one row-chunk section. Large enough to keep
/// framing overhead negligible, small enough that neither side ever
/// holds more than one chunk of encoded rows in memory.
const CHUNK_TARGET_BYTES: usize = 256 * 1024;

/// What one recovery pass did, for operators and the `repro recover`
/// harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed (false: recovery started from an
    /// empty KB and replayed the WAL alone).
    pub snapshot_loaded: bool,
    /// The durability epoch of the recovered state: the snapshot's
    /// epoch, or the WAL's when no epoch-stamped snapshot exists (0 for
    /// fully legacy directories).
    pub epoch: u64,
    /// Intact WAL records replayed on top of the snapshot.
    pub wal_records: usize,
    /// Torn-tail bytes truncated from the WAL (0 for a clean shutdown).
    pub wal_truncated_bytes: u64,
    /// Intact WAL records *discarded* instead of replayed, because the
    /// log's epoch did not pair with the snapshot's — the residue of a
    /// crash between a snapshot commit and its WAL reset. Their effects
    /// are already in the snapshot; replaying them would double-apply.
    pub wal_discarded_records: usize,
    /// Why records were discarded, when [`Self::wal_discarded_records`]
    /// is non-zero.
    pub wal_discard_reason: Option<String>,
    /// Indexes created by the post-replay `auto_index` safety net. Zero
    /// whenever the snapshot carried an index policy (the normal case —
    /// the sweep is skipped entirely so recovery never invents access
    /// paths or generation bumps the original lacked); non-zero only for
    /// pre-policy snapshots, where the sweep restores the access paths
    /// the envelope could not.
    pub auto_indexes_created: usize,
}

// ---------------------------------------------------------------------
// Binary format: value and section codecs
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&f.get().to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(TAG_TEXT);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

/// A bounds-checked cursor over one decoded section payload. Every read
/// failure is a [`DurabilityError::Corrupt`]: the payload already passed
/// its checksum, so running out of bytes means the writer and reader
/// disagree about the layout — never something to tolerate.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], context: &'a str) -> Self {
        Cursor { bytes, pos: 0, context }
    }

    fn corrupt(&self, what: &str) -> DurabilityError {
        DurabilityError::Corrupt(format!("{}: {what}", self.context))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurabilityError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.corrupt("section payload ends mid-field"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DurabilityError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DurabilityError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DurabilityError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn text(&mut self) -> Result<String, DurabilityError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("non-UTF-8 text field"))
    }

    fn value(&mut self) -> Result<Value, DurabilityError> {
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            TAG_INT => Ok(Value::Int(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))),
            TAG_FLOAT => {
                let bits = u64::from_le_bytes(self.take(8)?.try_into().expect("8"));
                let f = f64::from_bits(bits);
                if !f.is_finite() {
                    return Err(self.corrupt("non-finite float value"));
                }
                Ok(Value::Float(FiniteF64::new(f)))
            }
            TAG_TEXT => Ok(Value::Text(self.text()?)),
            tag => Err(self.corrupt(&format!("unknown value tag {tag}"))),
        }
    }

    fn finish(&self) -> Result<(), DurabilityError> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt("trailing bytes after the last field"));
        }
        Ok(())
    }
}

/// Writes one `[len][crc][payload]` section.
fn write_section(w: &mut impl Write, payload: &[u8]) -> Result<(), DurabilityError> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one section. Every failure mode — a short header, an oversized
/// length, a short payload, a checksum mismatch — is hard corruption:
/// snapshot commits are atomic, so a damaged section means the file was
/// damaged, not interrupted.
fn read_section(r: &mut impl Read, path: &Path) -> Result<Vec<u8>, DurabilityError> {
    let mut header = [0u8; 8];
    read_exact_or_corrupt(r, &mut header, path, "section header")?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_RECORD_BYTES {
        return Err(DurabilityError::Corrupt(format!(
            "{}: section claims {len} bytes (limit {MAX_RECORD_BYTES})",
            path.display()
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_or_corrupt(r, &mut payload, path, "section payload")?;
    if crc32(&payload) != crc {
        return Err(DurabilityError::Corrupt(format!(
            "{}: section checksum mismatch",
            path.display()
        )));
    }
    Ok(payload)
}

/// `read_exact` that reports a short read as corruption (a truncated
/// snapshot) instead of a bare I/O error.
fn read_exact_or_corrupt(
    r: &mut impl Read,
    buf: &mut [u8],
    path: &Path,
    what: &str,
) -> Result<(), DurabilityError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            DurabilityError::Corrupt(format!("{}: truncated {what}", path.display()))
        } else {
            DurabilityError::Io(e)
        }
    })
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

/// Streams `kb` as a binary snapshot image to exactly `path` — no tmp
/// file, no rename — and fsyncs it. This is the compaction half that
/// runs *without* holding the store lock; pair it with
/// [`commit_snapshot`] to publish the image atomically.
pub fn write_snapshot_file(
    kb: &KnowledgeBase,
    path: &Path,
    epoch: u64,
) -> Result<(), DurabilityError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(SNAPSHOT_MAGIC_BINARY)?;
    w.write_all(&epoch.to_le_bytes())?;

    let names = kb.table_names();
    let mut meta = Vec::with_capacity(20);
    meta.extend_from_slice(&kb.generation().to_le_bytes());
    meta.extend_from_slice(&kb.schema_generation().to_le_bytes());
    meta.extend_from_slice(&(names.len() as u32).to_le_bytes());
    write_section(&mut w, &meta)?;

    for name in names {
        let table = kb.table(name).expect("table_names() returns existing tables");
        let schema_json = serde_json::to_string(&table.schema)
            .expect("schema serialisation cannot fail")
            .into_bytes();
        let specs = table.index_specs();

        let mut header = Vec::new();
        header.extend_from_slice(&(name.len() as u32).to_le_bytes());
        header.extend_from_slice(name.as_bytes());
        header.extend_from_slice(&(schema_json.len() as u32).to_le_bytes());
        header.extend_from_slice(&schema_json);
        header.extend_from_slice(&(specs.len() as u32).to_le_bytes());
        for spec in &specs {
            header.extend_from_slice(&(spec.column.len() as u32).to_le_bytes());
            header.extend_from_slice(spec.column.as_bytes());
            header.push(match spec.kind {
                IndexKind::Hash => 0,
                IndexKind::Ordered => 1,
            });
        }
        header.extend_from_slice(&(table.rows.len() as u64).to_le_bytes());
        write_section(&mut w, &header)?;

        // Row chunks: encode into a bounded buffer, flush a section
        // whenever it passes the target. The chunk boundaries are not
        // part of the format's meaning — the reader just consumes
        // sections until the declared row count is reached.
        let mut chunk = Vec::with_capacity(CHUNK_TARGET_BYTES + 1024);
        let mut rows_in_chunk = 0u32;
        chunk.extend_from_slice(&[0u8; 4]); // row-count placeholder
        for row in &table.rows {
            for v in row {
                encode_value(&mut chunk, v);
            }
            rows_in_chunk += 1;
            if chunk.len() >= CHUNK_TARGET_BYTES {
                chunk[..4].copy_from_slice(&rows_in_chunk.to_le_bytes());
                write_section(&mut w, &chunk)?;
                chunk.clear();
                chunk.extend_from_slice(&[0u8; 4]);
                rows_in_chunk = 0;
            }
        }
        if rows_in_chunk > 0 {
            chunk[..4].copy_from_slice(&rows_in_chunk.to_le_bytes());
            write_section(&mut w, &chunk)?;
        }
    }

    let file = w.into_inner().map_err(|e| DurabilityError::Io(e.into_error()))?;
    file.sync_all()?;
    Ok(())
}

/// Publishes a snapshot image written by [`write_snapshot_file`]:
/// renames `tmp` over `path` and syncs the directory. The rename is the
/// durability commit point — before it the old snapshot (and its
/// matching WAL) is the recovered state, after it the new one is.
pub fn commit_snapshot(tmp: &Path, path: &Path) -> Result<(), DurabilityError> {
    std::fs::rename(tmp, path)?;
    // Persist the rename itself where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = OpenOptions::new().read(true).open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes `kb` as a binary snapshot at `path`, atomically (stream to
/// `<path>.tmp` + fsync + rename).
pub fn write_snapshot(kb: &KnowledgeBase, path: &Path, epoch: u64) -> Result<(), DurabilityError> {
    let tmp = path.with_extension("tmp");
    write_snapshot_file(kb, &tmp, epoch)?;
    commit_snapshot(&tmp, path)
}

/// Writes `kb` in the legacy JSON snapshot format (a single checksummed
/// frame around the JSON envelope, no epoch). Kept for the legacy
/// recovery path's tests and fixtures; the durable path always writes
/// the binary format.
pub fn write_snapshot_json(kb: &KnowledgeBase, path: &Path) -> Result<(), DurabilityError> {
    let payload = kb.to_json().into_bytes();
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(SNAPSHOT_MAGIC)?;
        f.write_all(&(payload.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&payload).to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    commit_snapshot(&tmp, path)
}

// ---------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------

/// Reads a snapshot in either format back into a [`KnowledgeBase`]
/// (indexes and generation counters restored), returning the header
/// epoch for the binary format and `None` for a legacy JSON snapshot.
/// Any frame damage is [`DurabilityError::Corrupt`] — snapshot commits
/// are atomic, so a torn snapshot means the file was damaged, not
/// interrupted.
pub fn read_snapshot(path: &Path) -> Result<(KnowledgeBase, Option<u64>), DurabilityError> {
    let mut magic = [0u8; 8];
    {
        let mut f = File::open(path)?;
        read_exact_or_corrupt(&mut f, &mut magic, path, "magic header")?;
    }
    if &magic == SNAPSHOT_MAGIC_BINARY {
        let (kb, epoch) = read_snapshot_binary(path)?;
        Ok((kb, Some(epoch)))
    } else if &magic == SNAPSHOT_MAGIC {
        Ok((read_snapshot_json(path)?, None))
    } else {
        Err(DurabilityError::Corrupt(format!(
            "{} is neither an OBCSSNB1 nor an OBCSSNP1 snapshot",
            path.display()
        )))
    }
}

/// Reads the epoch out of a binary snapshot header without loading the
/// image. `None` for a missing, legacy, or torn file.
pub(crate) fn peek_epoch(path: &Path) -> Option<u64> {
    let mut header = [0u8; 16];
    let mut f = File::open(path).ok()?;
    f.read_exact(&mut header).ok()?;
    if &header[..8] != SNAPSHOT_MAGIC_BINARY {
        return None;
    }
    Some(u64::from_le_bytes(header[8..].try_into().expect("8 bytes")))
}

fn read_snapshot_binary(path: &Path) -> Result<(KnowledgeBase, u64), DurabilityError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u8; 16];
    read_exact_or_corrupt(&mut r, &mut header, path, "snapshot header")?;
    debug_assert_eq!(&header[..8], SNAPSHOT_MAGIC_BINARY, "caller dispatched on the magic");
    let epoch = u64::from_le_bytes(header[8..].try_into().expect("8 bytes"));

    let meta = read_section(&mut r, path)?;
    let mut c = Cursor::new(&meta, "meta section");
    let data_gen = c.u64()?;
    let schema_gen = c.u64()?;
    let table_count = c.u32()? as usize;
    c.finish()?;

    let corrupt = |msg: String| DurabilityError::Corrupt(format!("{}: {msg}", path.display()));
    let mut tables = HashMap::with_capacity(table_count);
    for _ in 0..table_count {
        let header = read_section(&mut r, path)?;
        let mut c = Cursor::new(&header, "table header section");
        let name = c.text()?;
        let schema_json = c.text()?;
        let schema: TableSchema = serde_json::from_str(&schema_json)
            .map_err(|e| corrupt(format!("table {name:?} schema does not parse: {e}")))?;
        let spec_count = c.u32()? as usize;
        let mut specs = Vec::with_capacity(spec_count);
        for _ in 0..spec_count {
            let column = c.text()?;
            let kind = match c.u8()? {
                0 => IndexKind::Hash,
                1 => IndexKind::Ordered,
                k => return Err(corrupt(format!("table {name:?} has unknown index kind {k}"))),
            };
            specs.push(IndexSpec { column, kind });
        }
        let row_count = c.u64()? as usize;
        c.finish()?;

        let arity = schema.columns.len();
        let mut rows = Vec::with_capacity(row_count);
        while rows.len() < row_count {
            let chunk = read_section(&mut r, path)?;
            let mut c = Cursor::new(&chunk, "row chunk section");
            let n = c.u32()? as usize;
            if n == 0 || rows.len() + n > row_count {
                return Err(corrupt(format!(
                    "table {name:?} chunk carries {n} rows against {} remaining",
                    row_count - rows.len()
                )));
            }
            for _ in 0..n {
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(c.value()?);
                }
                rows.push(row);
            }
            c.finish()?;
        }

        let table = Table::assemble(schema, rows, &specs)
            .map_err(|e| corrupt(format!("table {name:?} does not reassemble: {e}")))?;
        tables.insert(name, table);
    }

    // The image must end exactly where the declared sections do:
    // trailing bytes mean the file and its framing disagree.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(corrupt("trailing bytes after the final section".to_string()));
    }

    Ok((
        KnowledgeBase::assemble(tables, GenerationStamp { data: data_gen, schema: schema_gen }),
        epoch,
    ))
}

fn read_snapshot_json(path: &Path) -> Result<KnowledgeBase, DurabilityError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let header = SNAPSHOT_MAGIC.len() + 8;
    if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::Corrupt(format!(
            "{} is not an OBCSSNP1 snapshot",
            path.display()
        )));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if bytes.len() != header + len {
        return Err(DurabilityError::Corrupt(format!(
            "{}: frame says {len} payload bytes, file has {}",
            path.display(),
            bytes.len() - header
        )));
    }
    let payload = &bytes[header..];
    if crc32(payload) != crc {
        return Err(DurabilityError::Corrupt(format!("{}: checksum mismatch", path.display())));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| DurabilityError::Corrupt(format!("{}: {e}", path.display())))?;
    KnowledgeBase::from_json(text)
        .map_err(|e| DurabilityError::Corrupt(format!("{}: {e}", path.display())))
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// Recovery internals shared by [`KnowledgeBase::recover_from`] and
/// `DurableKb::open`: load the snapshot, settle any interrupted
/// compaction swap, replay the WAL *iff its epoch pairs with the
/// snapshot's* (torn tail already truncated by `Wal::open`), then
/// re-run the index-policy sweep for legacy envelopes.
pub(crate) fn recover(
    snapshot_path: &Path,
    wal_path: &Path,
) -> Result<(KnowledgeBase, Wal, RecoveryReport), DurabilityError> {
    let snapshot_loaded = snapshot_path.exists();
    let (mut kb, snap_epoch) =
        if snapshot_loaded { read_snapshot(snapshot_path)? } else { (KnowledgeBase::new(), None) };

    // An interrupted compaction swap: the successor WAL was staged at
    // `<wal>.new` but the rename over the live log was lost. The
    // snapshot rename is the commit point — if the staged log's epoch
    // matches the snapshot's, the compaction committed and we redo the
    // rename (the superseded live log's records are all covered by the
    // snapshot); in any other state the compaction never committed and
    // the staged file is residue to delete.
    let swap = wal::swap_path(wal_path);
    let mut swap_superseded = 0usize;
    let mut swap_completed = false;
    if swap.exists() {
        if snap_epoch.is_some() && Wal::peek_epoch(&swap) == snap_epoch {
            if wal_path.exists() {
                swap_superseded =
                    Wal::open(wal_path).map(|(_, replay)| replay.records.len()).unwrap_or(0);
            }
            std::fs::rename(&swap, wal_path)?;
            swap_completed = true;
        } else {
            std::fs::remove_file(&swap)?;
        }
    }

    let (mut wal, replay) = Wal::open(wal_path)?;
    let intact = replay.records.len();
    let (records, epoch, wal_discarded_records, mut wal_discard_reason) =
        match (snap_epoch, replay.epoch) {
            // The log extends this snapshot: replay it.
            (Some(se), Some(we)) if se == we => (replay.records, se, 0, None),
            // Epoch mismatch: a crash between a snapshot commit and its
            // WAL reset (or a stale log from an earlier incarnation).
            // The snapshot already contains the records' effects —
            // discard them and realign the log, never double-apply.
            (Some(se), we) => {
                let reason = (intact > 0).then(|| match we {
                    Some(we) => format!(
                        "WAL at epoch {we} does not extend the snapshot at epoch {se}; \
                         its {intact} records are already in the snapshot"
                    ),
                    None => format!(
                        "legacy (pre-epoch) WAL cannot extend the snapshot at epoch {se}; \
                         its {intact} records are already in the snapshot"
                    ),
                });
                wal.reset(se)?;
                (Vec::new(), se, intact, reason)
            }
            // No epoch-stamped snapshot (legacy JSON, or none at all):
            // the log is the authority; adopt its epoch.
            (None, we) => (replay.records, we.unwrap_or(0), 0, None),
        };
    if swap_completed && swap_superseded > 0 {
        wal_discard_reason = Some(format!(
            "completed an interrupted compaction swap; {swap_superseded} superseded records \
             discarded (their effects are in the epoch-{epoch} snapshot)"
        ));
    }

    for record in &records {
        record.apply(&mut kb)?;
    }
    // Safety net for snapshots written before the envelope carried an
    // index policy: their indexes are unrecoverable from the file, so
    // re-run the policy sweep. Modern envelopes restore their exact
    // access paths above, and running the sweep on them would *create*
    // indexes (and generation bumps) the original never had.
    let auto_indexes_created = if kb.from_legacy_envelope() { kb.auto_index() } else { 0 };
    Ok((
        kb,
        wal,
        RecoveryReport {
            snapshot_loaded,
            epoch,
            wal_records: records.len(),
            wal_truncated_bytes: replay.truncated_bytes,
            wal_discarded_records: wal_discarded_records + swap_superseded,
            wal_discard_reason,
            auto_indexes_created,
        },
    ))
}

impl KnowledgeBase {
    /// Writes this KB as an atomic point-in-time binary snapshot at
    /// `path`, stamped at epoch 0. Standalone use only — a snapshot
    /// paired with a WAL must go through `DurableKb`, which manages the
    /// epoch sequence.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<(), DurabilityError> {
        write_snapshot(self, path.as_ref(), 0)
    }

    /// Rebuilds a KB from a snapshot plus the WAL tail: loads the
    /// snapshot at `snapshot_path` (or starts empty if none exists),
    /// replays every intact record of the log at `wal_path` — a torn
    /// final record is truncated, never applied, and a log whose epoch
    /// does not pair with the snapshot's is discarded outright (its
    /// records are already in the snapshot) — and, for legacy
    /// pre-policy snapshots only, re-runs the `auto_index` policy
    /// sweep. Generation counters, secondary
    /// indexes, and PK indexes all come back, so a recovered KB serves
    /// with the same access paths and the same cache-validation stamps
    /// as the original (see `WalRecord::apply`).
    pub fn recover_from(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
    ) -> Result<(KnowledgeBase, RecoveryReport), DurabilityError> {
        let (kb, _wal, report) = recover(snapshot_path.as_ref(), wal_path.as_ref())?;
        Ok((kb, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::schema::{ColumnType, TableSchema};
    use crate::value::Value;
    use crate::wal::WalRecord;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("obcs_snap_{}_{tag}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        for (i, n) in [(1, "Aspirin"), (2, "Ibuprofen")] {
            kb.insert("drug", vec![Value::Int(i), Value::text(n)]).unwrap();
        }
        kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        kb
    }

    #[test]
    fn binary_snapshot_roundtrip_restores_everything() {
        let dir = temp_dir("roundtrip");
        let kb = sample_kb();
        let path = dir.join("kb.snapshot");
        write_snapshot(&kb, &path, 42).unwrap();
        assert_eq!(peek_epoch(&path), Some(42));
        let (back, epoch) = read_snapshot(&path).unwrap();
        assert_eq!(epoch, Some(42), "the header epoch comes back");
        assert_eq!(back.to_json(), kb.to_json());
        assert_eq!(back.generation(), kb.generation());
        assert_eq!(back.schema_generation(), kb.schema_generation());
        assert_eq!(back.index_count(), kb.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_snapshot_is_still_readable() {
        let dir = temp_dir("json");
        let kb = sample_kb();
        let path = dir.join("kb.snapshot");
        write_snapshot_json(&kb, &path).unwrap();
        assert_eq!(peek_epoch(&path), None, "JSON snapshots carry no epoch");
        let (back, epoch) = read_snapshot(&path).unwrap();
        assert_eq!(epoch, None);
        assert_eq!(back.to_json(), kb.to_json());
        assert_eq!(back.generation(), kb.generation());
        assert_eq!(back.index_count(), kb.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_truncation() {
        let dir = temp_dir("corrupt");
        let path = dir.join("kb.snapshot");
        sample_kb().snapshot_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        // Truncated file: also hard corruption.
        let full = {
            sample_kb().snapshot_to(&path).unwrap();
            std::fs::read(&path).unwrap()
        };
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        // Trailing garbage after the final section: also hard corruption.
        let mut padded = full.clone();
        padded.extend_from_slice(b"\x00");
        std::fs::write(&path, &padded).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_from_snapshot_plus_wal_tail() {
        let dir = temp_dir("recover");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        let mut kb = sample_kb();
        kb.snapshot_to(&snap).unwrap();
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        // Post-snapshot mutations, applied and logged in lockstep.
        let tail = vec![
            WalRecord::Insert {
                table: "drug".to_string(),
                row: vec![Value::Int(3), Value::text("Naproxen")],
            },
            WalRecord::CreateIndex {
                table: "drug".to_string(),
                column: "name".to_string(),
                kind: IndexKind::Ordered,
            },
        ];
        for r in &tail {
            r.apply(&mut kb).unwrap();
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.epoch, 0, "snapshot_to stamps epoch 0; the fresh WAL matches");
        assert_eq!(report.wal_records, 2);
        assert_eq!(report.wal_truncated_bytes, 0);
        assert_eq!(report.wal_discarded_records, 0);
        assert_eq!(report.auto_indexes_created, 0, "policy came back from the envelope");
        assert_eq!(recovered.to_json(), kb.to_json());
        assert_eq!(recovered.generation(), kb.generation());
        assert_eq!(recovered.schema_generation(), kb.schema_generation());
        assert_eq!(recovered.index_count(), kb.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_mismatch_discards_the_stale_wal_with_a_reason() {
        let dir = temp_dir("mismatch");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        // A WAL at epoch 0 carrying records whose effects the epoch-1
        // snapshot already contains — the exact residue of a crash
        // between a snapshot commit and its WAL reset.
        let mut kb = sample_kb();
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        let stale = WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(3), Value::text("Naproxen")],
        };
        stale.apply(&mut kb).unwrap();
        wal.append(&stale).unwrap();
        wal.sync().unwrap();
        drop(wal);
        write_snapshot(&kb, &snap, 1).unwrap();

        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.wal_records, 0, "stale records never replay");
        assert_eq!(report.wal_discarded_records, 1);
        let reason = report.wal_discard_reason.as_deref().expect("discard is reported");
        assert!(reason.contains("epoch 0") && reason.contains("epoch 1"), "{reason}");
        assert_eq!(recovered.to_json(), kb.to_json(), "no duplicate row");
        // The realignment is durable: a second recovery is clean.
        let (again, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert_eq!(report.wal_discarded_records, 0);
        assert_eq!(report.epoch, 1);
        assert_eq!(again.to_json(), kb.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_without_snapshot_replays_the_wal_alone() {
        let dir = temp_dir("walonly");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        let mut oracle = KnowledgeBase::new();
        let records = vec![
            WalRecord::CreateTable(
                TableSchema::new("t").column("id", ColumnType::Int).primary_key("id"),
            ),
            WalRecord::Insert { table: "t".to_string(), row: vec![Value::Int(9)] },
        ];
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        for r in &records {
            r.apply(&mut oracle).unwrap();
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_records, 2);
        assert_eq!(report.epoch, 0, "a fresh WAL starts the epoch sequence at 0");
        // The WAL replays everything from the beginning — including any
        // CreateIndex/AutoIndex records — so no safety-net sweep runs.
        assert_eq!(report.auto_indexes_created, 0);
        assert_eq!(recovered.table("t").unwrap().len(), 1);
        assert_eq!(recovered.generation(), oracle.generation());
        assert_eq!(recovered.index_count(), oracle.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_snapshot_gets_the_auto_index_safety_net() {
        let dir = temp_dir("legacy");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        // A pre-durability envelope: no `generations`, no `index_policy`.
        // Its indexes are unrecoverable from the file, so recovery
        // re-runs the auto_index sweep and reports what it created.
        let payload = br#"{
            "tables": {
                "drug": {
                    "schema": {
                        "name": "drug",
                        "columns": [
                            {"name": "drug_id", "ty": "Int"},
                            {"name": "name", "ty": "Text"}
                        ],
                        "primary_key": "drug_id",
                        "foreign_keys": []
                    },
                    "rows": [[{"Int": 1}, {"Text": "Aspirin"}]]
                }
            }
        }"#;
        let mut frame = Vec::new();
        frame.extend_from_slice(SNAPSHOT_MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        std::fs::write(&snap, &frame).unwrap();

        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert!(report.snapshot_loaded);
        assert!(report.auto_indexes_created > 0, "sweep restores access paths");
        assert!(recovered.index_count() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_swap_is_completed_when_the_snapshot_committed() {
        let dir = temp_dir("swap");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        // The crash point after commit_snapshot but before the WAL
        // rename: the live log still wears epoch 1 with superseded
        // records, the staged successor wears epoch 2 with the delta.
        let mut kb = sample_kb();
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        wal.reset(1).unwrap();
        let superseded = WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(3), Value::text("Naproxen")],
        };
        superseded.apply(&mut kb).unwrap();
        wal.append(&superseded).unwrap();
        wal.sync().unwrap();
        drop(wal);
        write_snapshot(&kb, &snap, 2).unwrap();
        let delta = WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(4), Value::text("Ketoprofen")],
        };
        let mut staged = Wal::create(wal::swap_path(&wal_path), 2).unwrap();
        staged.append(&delta).unwrap();
        staged.sync().unwrap();
        drop(staged);

        let mut oracle = kb.clone();
        delta.apply(&mut oracle).unwrap();
        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.wal_records, 1, "the staged delta replays");
        assert_eq!(report.wal_discarded_records, 1, "the superseded record is discarded");
        assert!(report.wal_discard_reason.as_deref().unwrap().contains("compaction swap"));
        assert_eq!(recovered.to_json(), oracle.to_json(), "no duplicate, no lost delta");
        assert!(!wal::swap_path(&wal_path).exists(), "the swap completed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_swap_residue_is_deleted() {
        let dir = temp_dir("residue");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        // The crash point before commit_snapshot: snapshot and live log
        // still agree at epoch 1; the staged epoch-2 successor never
        // committed and must not clobber the live log.
        let mut kb = sample_kb();
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        wal.reset(1).unwrap();
        let live = WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(3), Value::text("Naproxen")],
        };
        live.apply(&mut kb).unwrap();
        wal.append(&live).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut pre_compaction = sample_kb();
        write_snapshot(&pre_compaction, &snap, 1).unwrap();
        let staged = Wal::create(wal::swap_path(&wal_path), 2).unwrap();
        drop(staged);

        live.apply(&mut pre_compaction).unwrap();
        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.wal_records, 1, "the live log replays untouched");
        assert_eq!(report.wal_discarded_records, 0);
        assert_eq!(recovered.to_json(), kb.to_json());
        assert!(!wal::swap_path(&wal_path).exists(), "residue deleted");
        std::fs::remove_dir_all(&dir).ok();
    }
}
