//! Point-in-time KB snapshots and recovery (DESIGN.md §16).
//!
//! A snapshot is the KB's JSON envelope (which since PR 9 carries the
//! generation counters and the per-table secondary-index policy) in a
//! single checksummed frame:
//!
//! ```text
//! OBCSSNP1 [u32 payload_len LE] [u32 crc32(payload) LE] [payload: KB JSON]
//! ```
//!
//! Snapshots are written atomically — serialize to `<path>.tmp`, fsync,
//! rename over `<path>` — so a crash mid-snapshot leaves the previous
//! snapshot intact. A torn *snapshot* therefore never occurs on the
//! normal path, and [`read_snapshot`] treats any frame damage as hard
//! corruption rather than something to silently truncate (unlike the
//! WAL tail, where torn frames are the expected crash residue).
//!
//! [`KnowledgeBase::recover_from`] composes the two halves: load the
//! snapshot (or start empty), replay the WAL's intact records through
//! [`crate::wal::WalRecord::apply`], then re-run the `auto_index` policy sweep as a
//! safety net for pre-policy snapshots. Generation counters come back
//! exactly: the snapshot restores the counters it was taken at, and
//! each replayed record bumps them precisely as the original call did.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::store::KnowledgeBase;
use crate::wal::{crc32, DurabilityError, Wal};

/// Magic header identifying a snapshot file (format version 1).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"OBCSSNP1";

/// What one recovery pass did, for operators and the `repro recover`
/// harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed (false: recovery started from an
    /// empty KB and replayed the WAL alone).
    pub snapshot_loaded: bool,
    /// Intact WAL records replayed on top of the snapshot.
    pub wal_records: usize,
    /// Torn-tail bytes truncated from the WAL (0 for a clean shutdown).
    pub wal_truncated_bytes: u64,
    /// Indexes created by the post-replay `auto_index` safety net. Zero
    /// whenever the snapshot carried an index policy (the normal case —
    /// the sweep is skipped entirely so recovery never invents access
    /// paths or generation bumps the original lacked); non-zero only for
    /// pre-policy snapshots, where the sweep restores the access paths
    /// the envelope could not.
    pub auto_indexes_created: usize,
}

/// Writes `kb` as a checksummed snapshot frame at `path`, atomically
/// (tmp file + fsync + rename).
pub fn write_snapshot(kb: &KnowledgeBase, path: &Path) -> Result<(), DurabilityError> {
    let payload = kb.to_json().into_bytes();
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(SNAPSHOT_MAGIC)?;
        f.write_all(&(payload.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&payload).to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = OpenOptions::new().read(true).open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads a snapshot frame back into a [`KnowledgeBase`] (indexes and
/// generation counters restored by `from_json`). Any frame damage is
/// [`DurabilityError::Corrupt`] — snapshot writes are atomic, so a torn
/// snapshot means the file was damaged, not interrupted.
pub fn read_snapshot(path: &Path) -> Result<KnowledgeBase, DurabilityError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let header = SNAPSHOT_MAGIC.len() + 8;
    if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::Corrupt(format!(
            "{} is not an OBCSSNP1 snapshot",
            path.display()
        )));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if bytes.len() != header + len {
        return Err(DurabilityError::Corrupt(format!(
            "{}: frame says {len} payload bytes, file has {}",
            path.display(),
            bytes.len() - header
        )));
    }
    let payload = &bytes[header..];
    if crc32(payload) != crc {
        return Err(DurabilityError::Corrupt(format!("{}: checksum mismatch", path.display())));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| DurabilityError::Corrupt(format!("{}: {e}", path.display())))?;
    KnowledgeBase::from_json(text)
        .map_err(|e| DurabilityError::Corrupt(format!("{}: {e}", path.display())))
}

/// Recovery internals shared by [`KnowledgeBase::recover_from`] and
/// `DurableKb::open`: load snapshot, replay the WAL (torn tail already
/// truncated by `Wal::open`), re-run the index-policy sweep.
pub(crate) fn recover(
    snapshot_path: &Path,
    wal_path: &Path,
) -> Result<(KnowledgeBase, Wal, RecoveryReport), DurabilityError> {
    let snapshot_loaded = snapshot_path.exists();
    let mut kb = if snapshot_loaded { read_snapshot(snapshot_path)? } else { KnowledgeBase::new() };
    let (wal, replay) = Wal::open(wal_path)?;
    for record in &replay.records {
        record.apply(&mut kb)?;
    }
    // Safety net for snapshots written before the envelope carried an
    // index policy: their indexes are unrecoverable from the file, so
    // re-run the policy sweep. Modern envelopes restore their exact
    // access paths above, and running the sweep on them would *create*
    // indexes (and generation bumps) the original never had.
    let auto_indexes_created = if kb.from_legacy_envelope() { kb.auto_index() } else { 0 };
    Ok((
        kb,
        wal,
        RecoveryReport {
            snapshot_loaded,
            wal_records: replay.records.len(),
            wal_truncated_bytes: replay.truncated_bytes,
            auto_indexes_created,
        },
    ))
}

impl KnowledgeBase {
    /// Writes this KB as an atomic point-in-time snapshot at `path`.
    /// The snapshot compacts the WAL: once it is on disk, a paired
    /// `Wal::reset` may drop every record it covers.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<(), DurabilityError> {
        write_snapshot(self, path.as_ref())
    }

    /// Rebuilds a KB from a snapshot plus the WAL tail: loads the
    /// snapshot at `snapshot_path` (or starts empty if none exists),
    /// replays every intact record of the log at `wal_path` — a torn
    /// final record is truncated, never applied — and, for legacy
    /// pre-policy snapshots only, re-runs the `auto_index` policy
    /// sweep. Generation counters, secondary
    /// indexes, and PK indexes all come back, so a recovered KB serves
    /// with the same access paths and the same cache-validation stamps
    /// as the original (see `WalRecord::apply`).
    pub fn recover_from(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
    ) -> Result<(KnowledgeBase, RecoveryReport), DurabilityError> {
        let (kb, _wal, report) = recover(snapshot_path.as_ref(), wal_path.as_ref())?;
        Ok((kb, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::schema::{ColumnType, TableSchema};
    use crate::value::Value;
    use crate::wal::WalRecord;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("obcs_snap_{}_{tag}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        for (i, n) in [(1, "Aspirin"), (2, "Ibuprofen")] {
            kb.insert("drug", vec![Value::Int(i), Value::text(n)]).unwrap();
        }
        kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        kb
    }

    #[test]
    fn snapshot_roundtrip_restores_everything() {
        let dir = temp_dir("roundtrip");
        let kb = sample_kb();
        let path = dir.join("kb.snapshot");
        kb.snapshot_to(&path).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.to_json(), kb.to_json());
        assert_eq!(back.generation(), kb.generation());
        assert_eq!(back.schema_generation(), kb.schema_generation());
        assert_eq!(back.index_count(), kb.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_truncation() {
        let dir = temp_dir("corrupt");
        let path = dir.join("kb.snapshot");
        sample_kb().snapshot_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        // Truncated file: also hard corruption.
        let full = {
            sample_kb().snapshot_to(&path).unwrap();
            std::fs::read(&path).unwrap()
        };
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_from_snapshot_plus_wal_tail() {
        let dir = temp_dir("recover");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        let mut kb = sample_kb();
        kb.snapshot_to(&snap).unwrap();
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        // Post-snapshot mutations, applied and logged in lockstep.
        let tail = vec![
            WalRecord::Insert {
                table: "drug".to_string(),
                row: vec![Value::Int(3), Value::text("Naproxen")],
            },
            WalRecord::CreateIndex {
                table: "drug".to_string(),
                column: "name".to_string(),
                kind: IndexKind::Ordered,
            },
        ];
        for r in &tail {
            r.apply(&mut kb).unwrap();
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.wal_records, 2);
        assert_eq!(report.wal_truncated_bytes, 0);
        assert_eq!(report.auto_indexes_created, 0, "policy came back from the envelope");
        assert_eq!(recovered.to_json(), kb.to_json());
        assert_eq!(recovered.generation(), kb.generation());
        assert_eq!(recovered.schema_generation(), kb.schema_generation());
        assert_eq!(recovered.index_count(), kb.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_without_snapshot_replays_the_wal_alone() {
        let dir = temp_dir("walonly");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        let mut oracle = KnowledgeBase::new();
        let records = vec![
            WalRecord::CreateTable(
                TableSchema::new("t").column("id", ColumnType::Int).primary_key("id"),
            ),
            WalRecord::Insert { table: "t".to_string(), row: vec![Value::Int(9)] },
        ];
        let (mut wal, _) = Wal::open(&wal_path).unwrap();
        for r in &records {
            r.apply(&mut oracle).unwrap();
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_records, 2);
        // The WAL replays everything from the beginning — including any
        // CreateIndex/AutoIndex records — so no safety-net sweep runs.
        assert_eq!(report.auto_indexes_created, 0);
        assert_eq!(recovered.table("t").unwrap().len(), 1);
        assert_eq!(recovered.generation(), oracle.generation());
        assert_eq!(recovered.index_count(), oracle.index_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_snapshot_gets_the_auto_index_safety_net() {
        let dir = temp_dir("legacy");
        let snap = dir.join("kb.snapshot");
        let wal_path = dir.join("kb.wal");
        // A pre-durability envelope: no `generations`, no `index_policy`.
        // Its indexes are unrecoverable from the file, so recovery
        // re-runs the auto_index sweep and reports what it created.
        let payload = br#"{
            "tables": {
                "drug": {
                    "schema": {
                        "name": "drug",
                        "columns": [
                            {"name": "drug_id", "ty": "Int"},
                            {"name": "name", "ty": "Text"}
                        ],
                        "primary_key": "drug_id",
                        "foreign_keys": []
                    },
                    "rows": [[{"Int": 1}, {"Text": "Aspirin"}]]
                }
            }
        }"#;
        let mut frame = Vec::new();
        frame.extend_from_slice(SNAPSHOT_MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        std::fs::write(&snap, &frame).unwrap();

        let (recovered, report) = KnowledgeBase::recover_from(&snap, &wal_path).unwrap();
        assert!(report.snapshot_loaded);
        assert!(report.auto_indexes_created > 0, "sweep restores access paths");
        assert!(recovered.index_count() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
