//! Typed cell values stored in the knowledge base.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single cell value. `Float` is wrapped so `Value` can be `Eq`/`Hash`
/// (NaN is rejected at construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    /// A finite float, stored via its bit pattern for hashing.
    Float(FiniteF64),
    Text(String),
}

/// A finite (non-NaN, non-infinite) f64 usable as a hash key.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FiniteF64(f64);

impl FiniteF64 {
    /// Wraps a float; panics if not finite. Use [`Value::float`] for a
    /// checked constructor.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite(), "KB float values must be finite, got {v}");
        // Normalise -0.0 to 0.0 so equal values hash identically.
        FiniteF64(if v == 0.0 { 0.0 } else { v })
    }

    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for FiniteF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for FiniteF64 {}
impl std::hash::Hash for FiniteF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("finite floats are totally ordered")
    }
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Checked float constructor; returns `None` for NaN/infinite input.
    pub fn float(v: f64) -> Option<Self> {
        v.is_finite().then(|| Value::Float(FiniteF64::new(v)))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The text content if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Total ordering across values of the *same* variant; across variants
    /// the order is Null < Bool < Int/Float (numeric) < Text. Ints and
    /// floats compare numerically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(&b.get()).expect("finite comparison"),
            (Float(a), Int(b)) => a.get().partial_cmp(&(*b as f64)).expect("finite comparison"),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }

    /// SQL-style equality: `NULL` equals nothing, ints and floats compare
    /// numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{}", v.get()),
            Value::Text(s) => f.write_str(s),
        }
    }
}

/// Escapes a string for inclusion in a single-quoted SQL literal.
pub fn sql_quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn null_never_equals() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(2).sql_eq(&Value::float(2.0).unwrap()));
        assert!(!Value::Int(2).sql_eq(&Value::float(2.5).unwrap()));
    }

    #[test]
    fn float_rejects_nan() {
        assert!(Value::float(f64::NAN).is_none());
        assert!(Value::float(f64::INFINITY).is_none());
        assert!(Value::float(1.5).is_some());
    }

    #[test]
    fn negative_zero_normalised() {
        let a = Value::float(0.0).unwrap();
        let b = Value::float(-0.0).unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn total_order_is_stable() {
        let mut vals = vec![
            Value::text("b"),
            Value::Int(3),
            Value::Null,
            Value::float(1.5).unwrap(),
            Value::text("a"),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::float(1.5).unwrap(),
                Value::Int(3),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn sql_quote_escapes_single_quotes() {
        assert_eq!(sql_quote("O'Neil"), "'O''Neil'");
        assert_eq!(sql_quote("plain"), "'plain'");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::float(2.5).unwrap().to_string(), "2.5");
    }
}
