//! Secondary indexes over table columns (DESIGN.md §14).
//!
//! Two shapes, selected per column by [`IndexKind`]:
//!
//! * **Hash** — raw-`Value` keys mapping to ascending row positions.
//!   Serves equality probes (with a numeric-twin dual probe bridging the
//!   `Int`/`Float` cross-type cases of `sql_eq`) and join builds: raw
//!   keys in insertion order replicate the executor's per-query hash
//!   join exactly, so probing the persistent index is indistinguishable
//!   from rebuilding the map per query.
//! * **Ordered** — a `BTreeMap` keyed by [`Value::total_cmp`] order.
//!   Serves LIKE-prefix ranges (text keys are lexicographically
//!   contiguous) and equality (numerically equal `Int`/`Float` keys
//!   collapse into one entry under `total_cmp`).
//!
//! Indexes are *candidate generators*, never truth: every probe returns
//! a superset of the matching row positions in ascending order, and the
//! executor re-applies all predicates to the candidates — which makes
//! indexed execution byte-identical to a full scan by construction
//! (property-tested in `tests/index_oracle.rs`). A probe may also
//! return `None` ("cannot answer exactly"): numeric keys at magnitudes
//! ≥ 2^53 lose `sql_eq` precision to f64 rounding (several `Int`s can
//! equal one `Float`), so the index declines and the executor scans.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The physical shape of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Raw-key hash map: equality probes and join builds.
    Hash,
    /// `total_cmp`-ordered map: prefix/range probes and equality.
    Ordered,
}

/// The durable description of one secondary index: which column, which
/// shape. Persisted per table in the KB's JSON envelope (DESIGN.md §16)
/// so deserialisation can rebuild the index structures — the structures
/// themselves (hash maps, BTreeMaps) are derivable from the rows and
/// are never serialised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexSpec {
    /// The indexed column's name.
    pub column: String,
    /// The physical index shape.
    pub kind: IndexKind,
}

/// Adapter giving `Value` the `Ord` of [`Value::total_cmp`] so it can
/// key a `BTreeMap`. Under this order `Int(2)` and `Float(2.0)` are
/// equal and share one map entry — exactly `sql_eq`'s numeric equality.
#[derive(Debug, Clone)]
pub struct OrdValue(pub Value);

impl PartialEq for OrdValue {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Magnitude bound below which every `Int` has an exact `f64` twin and
/// vice versa. At or above 2^53 several distinct `Int`s round to the
/// same `Float` under `sql_eq`, so index probes cannot be exact.
const EXACT_F64_BOUND: f64 = 9_007_199_254_740_992.0; // 2^53

/// Whether an equality probe key determines its `sql_eq` class exactly:
/// the set of values equal to it is `{Int(k), Float(k)}` (or just the
/// raw key for non-numerics), both representable.
fn exactly_probeable(v: &Value) -> bool {
    match v {
        Value::Int(i) => (i.unsigned_abs() as f64) < EXACT_F64_BOUND,
        Value::Float(f) => f.get().abs() < EXACT_F64_BOUND,
        _ => true,
    }
}

/// The `Int`↔`Float` twin a numeric key is `sql_eq` to, if distinct
/// from the key itself under raw (derived) equality.
fn numeric_twin(v: &Value) -> Option<Value> {
    match v {
        Value::Int(i) => Value::float(*i as f64),
        Value::Float(f) => {
            let x = f.get();
            (x.fract() == 0.0).then_some(Value::Int(x as i64))
        }
        _ => None,
    }
}

#[derive(Debug, Clone)]
enum IndexData {
    Hash(HashMap<Value, Vec<u32>>),
    Ordered(BTreeMap<OrdValue, Vec<u32>>),
}

/// One secondary index over a single column of a table. NULLs are never
/// indexed (they match no predicate and no join).
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    column: String,
    /// Column position within the table's schema.
    col: usize,
    data: IndexData,
    /// Set when an ordered index saw a numeric key at magnitude ≥ 2^53:
    /// `total_cmp` is not transitive across mixed huge `Int`/`Float`
    /// keys, so the map's order can no longer be trusted and every
    /// probe answers `None` (the executor falls back to scanning).
    saturated: bool,
}

impl SecondaryIndex {
    pub fn new(column: impl Into<String>, col: usize, kind: IndexKind) -> Self {
        SecondaryIndex {
            column: column.into(),
            col,
            data: match kind {
                IndexKind::Hash => IndexData::Hash(HashMap::new()),
                IndexKind::Ordered => IndexData::Ordered(BTreeMap::new()),
            },
            saturated: false,
        }
    }

    /// The indexed column's name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The indexed column's position within the table schema.
    pub fn column_pos(&self) -> usize {
        self.col
    }

    pub fn kind(&self) -> IndexKind {
        match self.data {
            IndexData::Hash(_) => IndexKind::Hash,
            IndexData::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// The persistable description of this index (column + kind).
    pub fn spec(&self) -> IndexSpec {
        IndexSpec { column: self.column.clone(), kind: self.kind() }
    }

    /// Number of distinct keys — the O(1) cardinality estimate behind
    /// the planner's index-vs-scan decision (`stats::estimated_eq_rows`).
    pub fn distinct_count(&self) -> usize {
        match &self.data {
            IndexData::Hash(m) => m.len(),
            IndexData::Ordered(m) => m.len(),
        }
    }

    /// Registers row `pos` holding `value` in the indexed column. Called
    /// on every insert (positions arrive in ascending order) and from
    /// [`rebuild`](Self::rebuild).
    pub fn insert_row(&mut self, pos: u32, value: &Value) {
        if value.is_null() {
            return;
        }
        match &mut self.data {
            IndexData::Hash(m) => m.entry(value.clone()).or_default().push(pos),
            IndexData::Ordered(m) => {
                if !exactly_probeable(value) {
                    // A huge numeric key would break total_cmp
                    // transitivity inside the BTreeMap; poison the
                    // index instead of corrupting it.
                    self.saturated = true;
                    return;
                }
                m.entry(OrdValue(value.clone())).or_default().push(pos);
            }
        }
    }

    /// Rebuilds from scratch over a table's rows.
    pub fn rebuild(&mut self, rows: &[Vec<Value>]) {
        self.saturated = false;
        match &mut self.data {
            IndexData::Hash(m) => m.clear(),
            IndexData::Ordered(m) => m.clear(),
        }
        for (pos, row) in rows.iter().enumerate() {
            self.insert_row(pos as u32, &row[self.col]);
        }
    }

    /// Positions whose key equals `key` under **raw** (derived) `Value`
    /// equality — the equality hash joins use. Hash indexes only.
    pub fn probe_raw(&self, key: &Value) -> Option<&[u32]> {
        match &self.data {
            IndexData::Hash(m) => m.get(key).map(Vec::as_slice),
            IndexData::Ordered(_) => None,
        }
    }

    /// Candidate positions for an `sql_eq` equality predicate, ascending.
    /// Returns `None` when the index cannot answer exactly (saturated
    /// ordered index, or a numeric key at magnitude ≥ 2^53); the caller
    /// must then fall back to a scan.
    pub fn probe_sql_eq(&self, key: &Value) -> Option<Vec<u32>> {
        if key.is_null() {
            return Some(Vec::new());
        }
        match &self.data {
            IndexData::Hash(m) => {
                if !exactly_probeable(key) {
                    return None;
                }
                let direct = m.get(key).map(Vec::as_slice).unwrap_or(&[]);
                let twin = numeric_twin(key)
                    .filter(|t| t != key)
                    .and_then(|t| m.get(&t).map(Vec::as_slice))
                    .unwrap_or(&[]);
                Some(merge_ascending(direct, twin))
            }
            IndexData::Ordered(m) => {
                if self.saturated {
                    return None;
                }
                Some(m.get(&OrdValue(key.clone())).cloned().unwrap_or_default())
            }
        }
    }

    /// Candidate positions for a `LIKE 'prefix%…'` predicate: every row
    /// whose text key starts with `prefix`, ascending. Ordered indexes
    /// only (text keys are contiguous under `total_cmp`); `None` when
    /// unavailable or saturated.
    pub fn probe_prefix(&self, prefix: &str) -> Option<Vec<u32>> {
        let IndexData::Ordered(m) = &self.data else { return None };
        if self.saturated {
            return None;
        }
        let start = OrdValue(Value::text(prefix));
        let mut positions: Vec<u32> = m
            .range(start..)
            .take_while(|(k, _)| k.0.as_text().is_some_and(|s| s.starts_with(prefix)))
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        // Each entry's positions are ascending, but entries interleave
        // across keys; restore global row order for the executor.
        positions.sort_unstable();
        Some(positions)
    }
}

/// Merges two ascending position slices into one ascending vec.
fn merge_ascending(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[Value]) -> Vec<Vec<Value>> {
        vals.iter().map(|v| vec![v.clone()]).collect()
    }

    #[test]
    fn hash_probe_raw_groups_in_insertion_order() {
        let mut idx = SecondaryIndex::new("c", 0, IndexKind::Hash);
        for (i, v) in [Value::Int(5), Value::Int(7), Value::Int(5)].iter().enumerate() {
            idx.insert_row(i as u32, v);
        }
        assert_eq!(idx.probe_raw(&Value::Int(5)), Some(&[0u32, 2][..]));
        assert_eq!(idx.probe_raw(&Value::Int(9)), None);
        assert_eq!(idx.distinct_count(), 2);
    }

    #[test]
    fn hash_sql_eq_dual_probes_numeric_twins() {
        let mut idx = SecondaryIndex::new("c", 0, IndexKind::Hash);
        idx.insert_row(0, &Value::Int(2));
        idx.insert_row(1, &Value::float(2.0).unwrap());
        idx.insert_row(2, &Value::float(2.5).unwrap());
        assert_eq!(idx.probe_sql_eq(&Value::Int(2)), Some(vec![0, 1]));
        assert_eq!(idx.probe_sql_eq(&Value::float(2.0).unwrap()), Some(vec![0, 1]));
        assert_eq!(idx.probe_sql_eq(&Value::float(2.5).unwrap()), Some(vec![2]));
        assert_eq!(idx.probe_sql_eq(&Value::Null), Some(vec![]));
    }

    #[test]
    fn huge_numeric_probe_declines() {
        let mut idx = SecondaryIndex::new("c", 0, IndexKind::Hash);
        idx.insert_row(0, &Value::Int(1 << 53));
        assert_eq!(idx.probe_sql_eq(&Value::Int(1 << 53)), None, "beyond 2^53 must scan");
        assert_eq!(idx.probe_sql_eq(&Value::Int(3)), Some(vec![]), "small keys stay exact");
    }

    #[test]
    fn ordered_collapses_numeric_twins_and_saturates_on_huge_keys() {
        let mut idx = SecondaryIndex::new("c", 0, IndexKind::Ordered);
        idx.insert_row(0, &Value::Int(2));
        idx.insert_row(1, &Value::float(2.0).unwrap());
        assert_eq!(idx.probe_sql_eq(&Value::Int(2)), Some(vec![0, 1]));
        assert_eq!(idx.distinct_count(), 1, "total_cmp-equal keys share an entry");
        idx.insert_row(2, &Value::Int(1 << 53));
        assert_eq!(idx.probe_sql_eq(&Value::Int(2)), None, "saturated index declines");
        idx.rebuild(&rows(&[Value::Int(2)]));
        assert_eq!(idx.probe_sql_eq(&Value::Int(2)), Some(vec![0]), "rebuild clears saturation");
    }

    #[test]
    fn prefix_probe_is_ascending_superset() {
        let mut idx = SecondaryIndex::new("c", 0, IndexKind::Ordered);
        for (i, s) in
            ["Cardiozol", "Aspirin", "Cardiomax", "NULL-ish", "Cardiomax"].iter().enumerate()
        {
            idx.insert_row(i as u32, &Value::text(*s));
        }
        idx.insert_row(5, &Value::Null);
        assert_eq!(idx.probe_prefix("Cardio"), Some(vec![0, 2, 4]));
        assert_eq!(idx.probe_prefix("Zz"), Some(vec![]));
        assert_eq!(idx.probe_prefix(""), Some(vec![0, 1, 2, 3, 4]), "NULL is never indexed");
    }

    #[test]
    fn hash_index_has_no_prefix_probe() {
        let mut idx = SecondaryIndex::new("c", 0, IndexKind::Hash);
        idx.insert_row(0, &Value::text("Cardiozol"));
        assert_eq!(idx.probe_prefix("Cardio"), None);
    }

    #[test]
    fn merge_ascending_interleaves() {
        assert_eq!(merge_ascending(&[1, 4, 9], &[2, 3, 10]), vec![1, 2, 3, 4, 9, 10]);
        assert_eq!(merge_ascending(&[], &[2]), vec![2]);
        assert_eq!(merge_ascending(&[1], &[]), vec![1]);
    }
}
