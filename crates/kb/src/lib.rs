//! # obcs-kb
//!
//! An in-memory relational knowledge base used as the storage substrate of
//! the ontology-based conversation system (SIGMOD'20). The paper stores the
//! Micromedex KB in Db2 on Cloud and executes the SQL produced by the
//! conversation space against it; this crate provides the equivalent local
//! substrate:
//!
//! * a typed relational store with primary/foreign-key constraints
//!   ([`KnowledgeBase`], [`schema`]),
//! * a SQL-subset parser and executor covering the query fragment the
//!   conversation system generates — `SELECT [DISTINCT] … FROM … INNER JOIN
//!   … ON … WHERE … AND … [ORDER BY …] [LIMIT …]` ([`sql`]),
//! * planner-selected secondary indexes — hash for equality and join
//!   probes, ordered for LIKE-prefix range reads — chosen at bind time
//!   and guaranteed byte-identical to scan execution ([`index`],
//!   DESIGN.md §14),
//! * data statistics (row counts, distinct counts, categorical-attribute
//!   detection) used by the bootstrapper to identify dependent concepts
//!   (paper §4.2.1) ([`stats`]),
//! * the data-driven ontology generator of the paper's \[18\]: inferring
//!   concepts, data properties, functional relationships, isA, and unionOf
//!   from schema constraints plus instance statistics ([`ontogen`]),
//! * durability: an append-only, checksummed write-ahead log of mutations
//!   plus atomic point-in-time snapshots that compact it. Recovery replays
//!   snapshot + WAL tail, truncates a torn final record instead of
//!   panicking, and restores generation counters and secondary indexes so
//!   a recovered KB serves with identical access paths ([`wal`],
//!   [`snapshot`], [`durable`], DESIGN.md §16).
//!
//! ## Example
//!
//! ```
//! use obcs_kb::{KnowledgeBase, schema::{TableSchema, ColumnType}, value::Value};
//!
//! let mut kb = KnowledgeBase::new();
//! kb.create_table(
//!     TableSchema::new("drug")
//!         .column("drug_id", ColumnType::Int).primary_key("drug_id")
//!         .column("name", ColumnType::Text),
//! ).unwrap();
//! kb.insert("drug", vec![Value::Int(1), Value::text("Aspirin")]).unwrap();
//! let rows = kb.query("SELECT name FROM drug WHERE drug_id = 1").unwrap();
//! assert_eq!(rows.rows[0][0], Value::text("Aspirin"));
//! ```
//!
//! Crate role: DESIGN.md §2; executor performance architecture: §9;
//! traced query execution (`query_traced`): §10.

pub mod durable;
pub mod index;
pub mod ontogen;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod stats;
pub mod store;
pub mod value;
pub mod wal;

pub use durable::{CompactionJob, DurableKb, SNAPSHOT_FILE, WAL_FILE};
pub use index::{IndexKind, IndexSpec, SecondaryIndex};
pub use snapshot::RecoveryReport;
pub use sql::exec::BoundPlan;
pub use store::{GenerationStamp, KbCacheStats, KbError, KnowledgeBase, ResultSet};
pub use value::Value;
pub use wal::{DurabilityError, Wal, WalRecord};
