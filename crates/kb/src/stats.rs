//! Data statistics over the knowledge base.
//!
//! The bootstrapper (paper §4.2.1) inspects instance-data statistics to
//! decide which neighbourhood concepts are *categorical attributes* — and
//! hence dependent concepts of a key concept — and to pull instance values
//! for entity population and training-example generation (§4.3, §4.5).

use serde::{Deserialize, Serialize};

use crate::store::{KbError, KnowledgeBase};
use crate::value::Value;

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    pub table: String,
    pub column: String,
    pub row_count: usize,
    /// Number of distinct non-null values.
    pub distinct_count: usize,
    pub null_count: usize,
}

impl ColumnStats {
    /// Distinct-to-row ratio (0 when the table is empty).
    pub fn distinct_ratio(&self) -> f64 {
        if self.row_count == 0 {
            0.0
        } else {
            self.distinct_count as f64 / self.row_count as f64
        }
    }
}

/// Thresholds for categorical-attribute detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoricalPolicy {
    /// A column is categorical if it has at most this many distinct values…
    pub max_distinct: usize,
    /// …or if its distinct ratio is at most this (repetition-heavy column).
    pub max_distinct_ratio: f64,
}

impl Default for CategoricalPolicy {
    fn default() -> Self {
        // Defaults tuned for reference-data KBs: a column with ≤ 64 distinct
        // values (age groups, routes, severities) or heavy repetition is an
        // enumerable attribute a user can be prompted with.
        CategoricalPolicy { max_distinct: 64, max_distinct_ratio: 0.1 }
    }
}

/// Computes statistics for one column.
pub fn column_stats(kb: &KnowledgeBase, table: &str, column: &str) -> Result<ColumnStats, KbError> {
    let t = kb.table(table)?;
    let idx = t.schema.column_index(column).ok_or_else(|| KbError::UnknownColumn {
        table: table.to_string(),
        column: column.to_string(),
    })?;
    let mut distinct = std::collections::HashSet::new();
    let mut nulls = 0usize;
    for row in &t.rows {
        match &row[idx] {
            Value::Null => nulls += 1,
            v => {
                distinct.insert(v.clone());
            }
        }
    }
    Ok(ColumnStats {
        table: table.to_string(),
        column: column.to_string(),
        row_count: t.len(),
        distinct_count: distinct.len(),
        null_count: nulls,
    })
}

/// Whether a column is categorical under the policy.
pub fn is_categorical(stats: &ColumnStats, policy: CategoricalPolicy) -> bool {
    if stats.row_count == 0 || stats.distinct_count == 0 {
        return false;
    }
    stats.distinct_count <= policy.max_distinct
        || stats.distinct_ratio() <= policy.max_distinct_ratio
}

/// Whether a *table* looks like a categorical attribute of its FK targets:
/// small distinct value domain in its descriptive columns relative to its
/// referencing role. The paper marks the neighbourhood concepts of a key
/// concept as dependent when their instance data behaves categorically.
pub fn table_is_categorical(
    kb: &KnowledgeBase,
    table: &str,
    policy: CategoricalPolicy,
) -> Result<bool, KbError> {
    let t = kb.table(table)?;
    if t.is_empty() {
        return Ok(false);
    }
    // A table behaves categorically if any of its non-key text columns is
    // categorical, or the table itself is small.
    if t.len() <= policy.max_distinct {
        return Ok(true);
    }
    for col in &t.schema.columns {
        let is_key = t.schema.primary_key.as_deref() == Some(col.name.as_str())
            || t.schema.is_foreign_key(&col.name);
        if is_key {
            continue;
        }
        let s = column_stats(kb, table, &col.name)?;
        if is_categorical(&s, policy) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// O(1) index-backed estimate of how many rows an equality predicate on
/// `table.column` selects: row count over the index's distinct-key count
/// (uniform-distribution assumption). `None` when the column has no
/// secondary index — the planner then has no cheap estimate and keeps
/// the scan (DESIGN.md §14). Unlike [`column_stats`] this never touches
/// row data, so the binder can afford it on every plan.
pub fn estimated_eq_rows(kb: &KnowledgeBase, table: &str, column: &str) -> Option<f64> {
    let t = kb.table(table).ok()?;
    let col = t.schema.column_index(column)?;
    let idx = t.index_for_eq(col)?;
    let distinct = idx.distinct_count();
    if distinct == 0 {
        return Some(0.0);
    }
    Some(t.len() as f64 / distinct as f64)
}

/// Samples up to `limit` distinct non-null values of a column (sorted, so
/// deterministic).
pub fn sample_values(
    kb: &KnowledgeBase,
    table: &str,
    column: &str,
    limit: usize,
) -> Result<Vec<Value>, KbError> {
    let mut vals = kb.distinct_values(table, column)?;
    vals.truncate(limit);
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableSchema};

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("category", ColumnType::Text)
                .column("unique_text", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        for i in 0..100 {
            kb.insert(
                "t",
                vec![
                    Value::Int(i),
                    Value::text(if i % 2 == 0 { "adult" } else { "pediatric" }),
                    Value::text(format!("desc-{i}")),
                ],
            )
            .unwrap();
        }
        kb
    }

    #[test]
    fn stats_counts() {
        let kb = kb();
        let s = column_stats(&kb, "t", "category").unwrap();
        assert_eq!(s.row_count, 100);
        assert_eq!(s.distinct_count, 2);
        assert_eq!(s.null_count, 0);
        assert!((s.distinct_ratio() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn categorical_detection() {
        let kb = kb();
        let policy = CategoricalPolicy::default();
        let cat = column_stats(&kb, "t", "category").unwrap();
        let uniq = column_stats(&kb, "t", "unique_text").unwrap();
        assert!(is_categorical(&cat, policy));
        assert!(!is_categorical(&uniq, policy));
    }

    #[test]
    fn null_heavy_column() {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("n")
                .column("id", ColumnType::Int)
                .column("x", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        for i in 0..10 {
            kb.insert("n", vec![Value::Int(i), Value::Null]).unwrap();
        }
        let s = column_stats(&kb, "n", "x").unwrap();
        assert_eq!(s.null_count, 10);
        assert_eq!(s.distinct_count, 0);
        assert!(!is_categorical(&s, CategoricalPolicy::default()));
    }

    #[test]
    fn empty_table_not_categorical() {
        let mut kb = KnowledgeBase::new();
        kb.create_table(TableSchema::new("e").column("x", ColumnType::Int)).unwrap();
        assert!(!table_is_categorical(&kb, "e", CategoricalPolicy::default()).unwrap());
    }

    #[test]
    fn small_table_is_categorical() {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("route")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        for (i, r) in ["ORAL", "TOPICAL", "IV"].iter().enumerate() {
            kb.insert("route", vec![Value::Int(i as i64), Value::text(*r)]).unwrap();
        }
        assert!(table_is_categorical(&kb, "route", CategoricalPolicy::default()).unwrap());
    }

    #[test]
    fn large_unique_table_not_categorical() {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("big")
                .column("id", ColumnType::Int)
                .column("desc", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        for i in 0..1000 {
            kb.insert("big", vec![Value::Int(i), Value::text(format!("d{i}"))]).unwrap();
        }
        assert!(!table_is_categorical(&kb, "big", CategoricalPolicy::default()).unwrap());
    }

    #[test]
    fn sample_values_deterministic() {
        let kb = kb();
        let v = sample_values(&kb, "t", "category", 10).unwrap();
        assert_eq!(v, vec![Value::text("adult"), Value::text("pediatric")]);
        let v = sample_values(&kb, "t", "category", 1).unwrap();
        assert_eq!(v.len(), 1);
    }
}
