//! The append-only write-ahead log of KB mutations (DESIGN.md §16).
//!
//! Every mutation that changes a [`KnowledgeBase`]'s durable state —
//! `create_table`, `insert`, `create_index`, and the policy-driven
//! `auto_index` sweep — has a [`WalRecord`] form. Records are framed as
//!
//! ```text
//! [u32 payload_len LE] [u32 crc32(payload) LE] [payload: record JSON]
//! ```
//!
//! after the file header. Two header versions exist: the legacy 8-byte
//! `OBCSWAL1` magic, and the current `OBCSWAL2` magic followed by a
//! little-endian u64 **durability epoch** — the epoch of the snapshot
//! this log extends (DESIGN.md §16). Recovery refuses to replay a log
//! whose epoch does not match its snapshot's, which is what makes the
//! snapshot-then-reset compaction sequence crash-safe: a fresh snapshot
//! next to a not-yet-reset log is detected by the mismatch and the
//! stale records are discarded instead of double-applied.
//!
//! The frame makes the log self-validating: on [`Wal::open`] the file
//! is replayed front to back and the scan stops at the first frame that
//! is incomplete, fails its checksum, or does not decode — a *torn
//! tail*, the expected residue of a crash mid-append. The torn bytes
//! are truncated away (never replayed, never panicked over), so
//! recovery is always prefix-consistent: every state the log can
//! produce is a state the original KB passed through. A v2 file cut
//! inside its epoch field (a crash mid-[`Wal::reset`]) is likewise
//! expected residue: the truncation guarantees no record can follow a
//! torn header, so the file reopens as a fresh epoch-0 log.
//!
//! Compaction is the snapshot's job ([`crate::snapshot`]): after a
//! point-in-time snapshot at epoch `e` is on disk, [`Wal::reset`] drops
//! every logged record and stamps `e` into the header, since the
//! snapshot already contains the records' effects.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::index::IndexKind;
use crate::schema::TableSchema;
use crate::store::{KbError, KnowledgeBase};
use crate::value::Value;

/// Magic header identifying a legacy WAL file (format version 1, no
/// epoch field). Still readable; never written for new logs.
pub const WAL_MAGIC: &[u8; 8] = b"OBCSWAL1";

/// Magic header identifying a current WAL file (format version 2). The
/// magic is followed by a little-endian u64 durability epoch.
pub const WAL_MAGIC_V2: &[u8; 8] = b"OBCSWAL2";

/// Byte length of a v2 header: magic plus the u64 epoch.
const WAL_HEADER_V2: usize = WAL_MAGIC_V2.len() + 8;

/// Upper bound on a single record's payload. A length prefix beyond this
/// is treated as frame corruption (torn tail), not an allocation request:
/// a flipped bit in the length field must not ask for gigabytes.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// One logged KB mutation, in the order the store applied it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// `KnowledgeBase::create_table` with the checked schema.
    CreateTable(TableSchema),
    /// `KnowledgeBase::insert` of one validated row.
    Insert {
        /// Target table name.
        table: String,
        /// The full row, in schema column order.
        row: Vec<Value>,
    },
    /// `KnowledgeBase::create_index` that actually created an index
    /// (no-op re-creations are not logged).
    CreateIndex {
        /// Target table name.
        table: String,
        /// Indexed column name.
        column: String,
        /// Physical index shape.
        kind: IndexKind,
    },
    /// A `KnowledgeBase::auto_index` sweep that created at least one
    /// index. The sweep is deterministic in the KB state, and replay
    /// sees exactly the state the original saw (same snapshot, same
    /// record prefix), so re-running it recreates the same indexes and
    /// the same generation bumps.
    AutoIndex,
}

impl WalRecord {
    /// Re-applies this mutation to `kb`, exactly as the original call
    /// did — including its generation bumps.
    pub fn apply(&self, kb: &mut KnowledgeBase) -> Result<(), KbError> {
        match self {
            WalRecord::CreateTable(schema) => kb.create_table(schema.clone()),
            WalRecord::Insert { table, row } => kb.insert(table, row.clone()),
            WalRecord::CreateIndex { table, column, kind } => {
                kb.create_index(table, column, *kind).map(|_| ())
            }
            WalRecord::AutoIndex => {
                kb.auto_index();
                Ok(())
            }
        }
    }
}

/// Errors of the durability subsystem (WAL, snapshot, recovery).
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file is unrecoverably malformed — wrong magic, or a corrupt
    /// snapshot body. (A torn WAL *tail* is not an error; it is
    /// truncated and reported in [`WalReplay::truncated_bytes`].)
    Corrupt(String),
    /// Replaying a logged mutation failed against the store — the log
    /// and snapshot disagree about KB history.
    Kb(KbError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "corrupt durability file: {msg}"),
            DurabilityError::Kb(e) => write!(f, "WAL replay rejected by the store: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<KbError> for DurabilityError {
    fn from(e: KbError) -> Self {
        DurabilityError::Kb(e)
    }
}

/// What [`Wal::open`] found in an existing log.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away (0 for a cleanly closed log).
    pub truncated_bytes: u64,
    /// The durability epoch in the header: `Some` for a v2 log (fresh
    /// logs start at 0), `None` for a legacy `OBCSWAL1` log, which
    /// predates epochs entirely.
    pub epoch: Option<u64>,
}

/// An open write-ahead log, positioned for appends past the last intact
/// record.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// `Some` for a v2 log; `None` while the file still wears its legacy
    /// v1 header (upgraded to v2 by the next [`Wal::reset`]).
    epoch: Option<u64>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying every intact
    /// record and truncating a torn tail. Fresh logs are written in v2
    /// form at epoch 0; legacy `OBCSWAL1` logs replay with
    /// [`WalReplay::epoch`] `None`. Errors only on I/O failure or a
    /// wrong magic header — a file that is not a WAL at all.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalReplay), DurabilityError> {
        let path = path.as_ref().to_path_buf();
        // truncate(false): an existing log must be replayed, not wiped.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(WAL_MAGIC_V2)?;
            file.write_all(&0u64.to_le_bytes())?;
            file.sync_all()?;
            return Ok((
                Wal { file, path, epoch: Some(0) },
                WalReplay { records: Vec::new(), truncated_bytes: 0, epoch: Some(0) },
            ));
        }
        let epoch = if bytes.len() >= WAL_MAGIC.len() && &bytes[..WAL_MAGIC.len()] == WAL_MAGIC {
            None
        } else if bytes.len() >= WAL_MAGIC_V2.len() && &bytes[..WAL_MAGIC_V2.len()] == WAL_MAGIC_V2
        {
            if bytes.len() < WAL_HEADER_V2 {
                // A crash mid-reset tore the epoch field. The reset
                // ordering (truncate, sync, then header) guarantees no
                // record can follow a torn header, so rewrite the file
                // as a fresh epoch-0 log.
                let torn = (bytes.len() - WAL_MAGIC_V2.len()) as u64;
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(WAL_MAGIC_V2)?;
                file.write_all(&0u64.to_le_bytes())?;
                file.sync_all()?;
                return Ok((
                    Wal { file, path, epoch: Some(0) },
                    WalReplay { records: Vec::new(), truncated_bytes: torn, epoch: Some(0) },
                ));
            }
            let mut e = [0u8; 8];
            e.copy_from_slice(&bytes[WAL_MAGIC_V2.len()..WAL_HEADER_V2]);
            Some(u64::from_le_bytes(e))
        } else {
            return Err(DurabilityError::Corrupt(format!(
                "{} does not start with an OBCSWAL magic",
                path.display()
            )));
        };

        let mut records = Vec::new();
        let mut pos = if epoch.is_some() { WAL_HEADER_V2 } else { WAL_MAGIC.len() };
        // Scan frame by frame; stop at the first incomplete or invalid
        // frame. Everything before `pos` is intact, everything after is
        // the torn tail.
        loop {
            if pos == bytes.len() {
                break;
            }
            if bytes.len() - pos < 8 {
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if len > MAX_RECORD_BYTES || pos + 8 + len > bytes.len() {
                break;
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break;
            }
            let Ok(text) = std::str::from_utf8(payload) else { break };
            let Ok(record) = serde_json::from_str::<WalRecord>(text) else { break };
            records.push(record);
            pos += 8 + len;
        }

        let truncated_bytes = (bytes.len() - pos) as u64;
        if truncated_bytes > 0 {
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((Wal { file, path, epoch }, WalReplay { records, truncated_bytes, epoch }))
    }

    /// Creates a fresh v2 log at `path` with the given epoch, truncating
    /// anything already there. Used by the compaction swap, which builds
    /// the successor log beside the live one before renaming it into
    /// place (the open handle survives the rename).
    pub(crate) fn create(path: impl AsRef<Path>, epoch: u64) -> Result<Wal, DurabilityError> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        file.write_all(WAL_MAGIC_V2)?;
        file.write_all(&epoch.to_le_bytes())?;
        Ok(Wal { file, path, epoch: Some(epoch) })
    }

    /// Reads the epoch out of a v2 log header without opening, replaying
    /// or repairing the file. `None` for a missing, legacy, or torn
    /// file.
    pub(crate) fn peek_epoch(path: &Path) -> Option<u64> {
        let mut header = [0u8; WAL_HEADER_V2];
        let mut f = File::open(path).ok()?;
        f.read_exact(&mut header).ok()?;
        if &header[..WAL_MAGIC_V2.len()] != WAL_MAGIC_V2 {
            return None;
        }
        let mut e = [0u8; 8];
        e.copy_from_slice(&header[WAL_MAGIC_V2.len()..]);
        Some(u64::from_le_bytes(e))
    }

    /// Appends one record frame. The bytes reach the OS here; call
    /// [`Wal::sync`] to force them to stable storage.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), DurabilityError> {
        let payload = serde_json::to_string(record)
            .expect("WAL record serialisation cannot fail")
            .into_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// fsyncs the log. Idempotent; cheap when nothing is pending.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Compaction: drops every logged record and stamps `epoch` into a
    /// fresh v2 header (upgrading a legacy v1 log in the process). Call
    /// after a snapshot at `epoch` has made the records redundant.
    ///
    /// The ordering is crash-critical: truncate to zero and sync
    /// *before* writing the new header. Writing the header first could
    /// leave the new epoch over the old records if the truncation never
    /// reached disk — exactly the double-apply the epoch exists to
    /// prevent. With truncate-first, every crash point leaves either the
    /// old log (intact, old epoch — discarded by the epoch check), an
    /// empty file (a fresh log), or a torn v2 header (repaired to a
    /// fresh log by [`Wal::open`]).
    pub fn reset(&mut self, epoch: u64) -> Result<(), DurabilityError> {
        self.file.set_len(0)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC_V2)?;
        self.file.write_all(&epoch.to_le_bytes())?;
        self.file.sync_all()?;
        self.epoch = Some(epoch);
        Ok(())
    }

    /// The durability epoch this log extends (`None` for a legacy v1
    /// log that has not been reset yet).
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-labels the handle after the file it owns was renamed (the
    /// compaction swap); the descriptor itself survives a rename.
    pub(crate) fn set_path(&mut self, path: PathBuf) {
        self.path = path;
    }
}

/// The staging path of the compaction swap: the successor WAL is built
/// at `<wal>.new`, synced, and renamed over the live log only after the
/// epoch-stamped snapshot commits. Recovery finding this file either
/// redoes the rename (epoch matches the snapshot: the swap committed)
/// or deletes it (any other state: the swap never committed).
pub(crate) fn swap_path(wal_path: &Path) -> PathBuf {
    let mut name = wal_path.as_os_str().to_os_string();
    name.push(".new");
    PathBuf::from(name)
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant) over
/// `bytes`. Implemented locally — the offline build has no crc crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("obcs_wal_{}_{tag}_{n}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable(
                TableSchema::new("drug")
                    .column("drug_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .primary_key("drug_id"),
            ),
            WalRecord::Insert {
                table: "drug".to_string(),
                row: vec![Value::Int(1), Value::text("Aspirin")],
            },
            WalRecord::CreateIndex {
                table: "drug".to_string(),
                column: "name".to_string(),
                kind: IndexKind::Ordered,
            },
            WalRecord::AutoIndex,
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = temp_path("replay");
        let records = sample_records();
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let path = temp_path("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // A crash mid-append: half a frame header and some garbage.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x90, 0x01, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.truncated_bytes, 6);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "tail truncated on disk");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_cuts_the_log_there() {
        let path = temp_path("crc");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip one payload byte of the second record (frames start
        // after the 16-byte v2 header).
        let mut bytes = std::fs::read(&path).unwrap();
        let first_frame = WAL_HEADER_V2;
        let first_len =
            u32::from_le_bytes(bytes[first_frame..first_frame + 4].try_into().unwrap()) as usize;
        let second_payload = first_frame + 8 + first_len + 8;
        bytes[second_payload] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records()[..1], "scan stops at the corrupt record");
        assert!(replay.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let path = temp_path("len");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&sample_records()[0]).unwrap();
            wal.sync().unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&[0u8; 4]).unwrap();
        drop(f);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.truncated_bytes, 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_an_error() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAWAL!xxxx").unwrap();
        assert!(matches!(Wal::open(&path), Err(DurabilityError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_compacts_to_header_only_and_stamps_the_epoch() {
        let path = temp_path("reset");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.epoch, Some(0), "fresh logs are v2 at epoch 0");
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.reset(7).unwrap();
            assert_eq!(wal.epoch(), Some(7));
            wal.append(&sample_records()[0]).unwrap();
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records()[..1], "only post-reset records survive");
        assert_eq!(replay.epoch, Some(7), "the epoch survives reopen");
        assert_eq!(Wal::peek_epoch(&path), Some(7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_logs_replay_without_an_epoch() {
        let path = temp_path("v1");
        // Hand-build a v1 log: legacy magic, then ordinary frames.
        let mut bytes = WAL_MAGIC.to_vec();
        for r in sample_records() {
            let payload = serde_json::to_string(&r).unwrap().into_bytes();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.epoch, None, "v1 predates epochs");
        assert_eq!(Wal::peek_epoch(&path), None);
        // The first reset upgrades the file to v2.
        wal.reset(3).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.epoch, Some(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_epoch_header_reopens_as_a_fresh_log() {
        let path = temp_path("torn_epoch");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&sample_records()[0]).unwrap();
            wal.reset(5).unwrap();
        }
        // A crash mid-reset: the header write itself tore. Every cut
        // inside the epoch field must reopen as a fresh epoch-0 log —
        // the truncate-first ordering guarantees no record follows it.
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_MAGIC_V2.len()..WAL_HEADER_V2 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty(), "cut at {cut}");
            assert_eq!(replay.epoch, Some(0), "cut at {cut}: repaired to a fresh log");
            assert_eq!(replay.truncated_bytes, (cut - WAL_MAGIC_V2.len()) as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_apply_matches_direct_mutation() {
        let mut direct = KnowledgeBase::new();
        let mut replayed = KnowledgeBase::new();
        for r in sample_records() {
            r.apply(&mut replayed).unwrap();
        }
        direct
            .create_table(
                TableSchema::new("drug")
                    .column("drug_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .primary_key("drug_id"),
            )
            .unwrap();
        direct.insert("drug", vec![Value::Int(1), Value::text("Aspirin")]).unwrap();
        direct.create_index("drug", "name", IndexKind::Ordered).unwrap();
        direct.auto_index();
        assert_eq!(direct.to_json(), replayed.to_json());
        assert_eq!(direct.generation(), replayed.generation());
        assert_eq!(direct.schema_generation(), replayed.schema_generation());
    }
}
