//! The append-only write-ahead log of KB mutations (DESIGN.md §16).
//!
//! Every mutation that changes a [`KnowledgeBase`]'s durable state —
//! `create_table`, `insert`, `create_index`, and the policy-driven
//! `auto_index` sweep — has a [`WalRecord`] form. Records are framed as
//!
//! ```text
//! [u32 payload_len LE] [u32 crc32(payload) LE] [payload: record JSON]
//! ```
//!
//! after an 8-byte `OBCSWAL1` magic header. The frame makes the log
//! self-validating: on [`Wal::open`] the file is replayed front to back
//! and the scan stops at the first frame that is incomplete, fails its
//! checksum, or does not decode — a *torn tail*, the expected residue of
//! a crash mid-append. The torn bytes are truncated away (never
//! replayed, never panicked over), so recovery is always
//! prefix-consistent: every state the log can produce is a state the
//! original KB passed through.
//!
//! Compaction is the snapshot's job ([`crate::snapshot`]): after a
//! point-in-time snapshot is on disk, [`Wal::reset`] drops every logged
//! record, since the snapshot already contains their effects.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::index::IndexKind;
use crate::schema::TableSchema;
use crate::store::{KbError, KnowledgeBase};
use crate::value::Value;

/// Magic header identifying a WAL file (format version 1).
pub const WAL_MAGIC: &[u8; 8] = b"OBCSWAL1";

/// Upper bound on a single record's payload. A length prefix beyond this
/// is treated as frame corruption (torn tail), not an allocation request:
/// a flipped bit in the length field must not ask for gigabytes.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// One logged KB mutation, in the order the store applied it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// `KnowledgeBase::create_table` with the checked schema.
    CreateTable(TableSchema),
    /// `KnowledgeBase::insert` of one validated row.
    Insert {
        /// Target table name.
        table: String,
        /// The full row, in schema column order.
        row: Vec<Value>,
    },
    /// `KnowledgeBase::create_index` that actually created an index
    /// (no-op re-creations are not logged).
    CreateIndex {
        /// Target table name.
        table: String,
        /// Indexed column name.
        column: String,
        /// Physical index shape.
        kind: IndexKind,
    },
    /// A `KnowledgeBase::auto_index` sweep that created at least one
    /// index. The sweep is deterministic in the KB state, and replay
    /// sees exactly the state the original saw (same snapshot, same
    /// record prefix), so re-running it recreates the same indexes and
    /// the same generation bumps.
    AutoIndex,
}

impl WalRecord {
    /// Re-applies this mutation to `kb`, exactly as the original call
    /// did — including its generation bumps.
    pub fn apply(&self, kb: &mut KnowledgeBase) -> Result<(), KbError> {
        match self {
            WalRecord::CreateTable(schema) => kb.create_table(schema.clone()),
            WalRecord::Insert { table, row } => kb.insert(table, row.clone()),
            WalRecord::CreateIndex { table, column, kind } => {
                kb.create_index(table, column, *kind).map(|_| ())
            }
            WalRecord::AutoIndex => {
                kb.auto_index();
                Ok(())
            }
        }
    }
}

/// Errors of the durability subsystem (WAL, snapshot, recovery).
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file is unrecoverably malformed — wrong magic, or a corrupt
    /// snapshot body. (A torn WAL *tail* is not an error; it is
    /// truncated and reported in [`WalReplay::truncated_bytes`].)
    Corrupt(String),
    /// Replaying a logged mutation failed against the store — the log
    /// and snapshot disagree about KB history.
    Kb(KbError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "corrupt durability file: {msg}"),
            DurabilityError::Kb(e) => write!(f, "WAL replay rejected by the store: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<KbError> for DurabilityError {
    fn from(e: KbError) -> Self {
        DurabilityError::Kb(e)
    }
}

/// What [`Wal::open`] found in an existing log.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log, positioned for appends past the last intact
/// record.
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying every intact
    /// record and truncating a torn tail. Errors only on I/O failure or
    /// a wrong magic header — a file that is not a WAL at all.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalReplay), DurabilityError> {
        let path = path.as_ref().to_path_buf();
        // truncate(false): an existing log must be replayed, not wiped.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            return Ok((Wal { file, path }, WalReplay { records: Vec::new(), truncated_bytes: 0 }));
        }
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(DurabilityError::Corrupt(format!(
                "{} does not start with the OBCSWAL1 magic",
                path.display()
            )));
        }

        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        // Scan frame by frame; stop at the first incomplete or invalid
        // frame. Everything before `pos` is intact, everything after is
        // the torn tail.
        loop {
            if pos == bytes.len() {
                break;
            }
            if bytes.len() - pos < 8 {
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if len > MAX_RECORD_BYTES || pos + 8 + len > bytes.len() {
                break;
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break;
            }
            let Ok(text) = std::str::from_utf8(payload) else { break };
            let Ok(record) = serde_json::from_str::<WalRecord>(text) else { break };
            records.push(record);
            pos += 8 + len;
        }

        let truncated_bytes = (bytes.len() - pos) as u64;
        if truncated_bytes > 0 {
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((Wal { file, path }, WalReplay { records, truncated_bytes }))
    }

    /// Appends one record frame. The bytes reach the OS here; call
    /// [`Wal::sync`] to force them to stable storage.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), DurabilityError> {
        let payload = serde_json::to_string(record)
            .expect("WAL record serialisation cannot fail")
            .into_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// fsyncs the log. Idempotent; cheap when nothing is pending.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Compaction: drops every logged record, keeping only the magic
    /// header. Call after a snapshot has made the records redundant.
    pub fn reset(&mut self) -> Result<(), DurabilityError> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.file.sync_all()?;
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant) over
/// `bytes`. Implemented locally — the offline build has no crc crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("obcs_wal_{}_{tag}_{n}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable(
                TableSchema::new("drug")
                    .column("drug_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .primary_key("drug_id"),
            ),
            WalRecord::Insert {
                table: "drug".to_string(),
                row: vec![Value::Int(1), Value::text("Aspirin")],
            },
            WalRecord::CreateIndex {
                table: "drug".to_string(),
                column: "name".to_string(),
                kind: IndexKind::Ordered,
            },
            WalRecord::AutoIndex,
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = temp_path("replay");
        let records = sample_records();
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let path = temp_path("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // A crash mid-append: half a frame header and some garbage.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x90, 0x01, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.truncated_bytes, 6);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "tail truncated on disk");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_cuts_the_log_there() {
        let path = temp_path("crc");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let second_payload = 8 + 8 + first_len + 8;
        bytes[second_payload] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records()[..1], "scan stops at the corrupt record");
        assert!(replay.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let path = temp_path("len");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&sample_records()[0]).unwrap();
            wal.sync().unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&[0u8; 4]).unwrap();
        drop(f);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.truncated_bytes, 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_an_error() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAWAL!xxxx").unwrap();
        assert!(matches!(Wal::open(&path), Err(DurabilityError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_compacts_to_header_only() {
        let path = temp_path("reset");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.reset().unwrap();
            wal.append(&sample_records()[0]).unwrap();
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, sample_records()[..1], "only post-reset records survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_apply_matches_direct_mutation() {
        let mut direct = KnowledgeBase::new();
        let mut replayed = KnowledgeBase::new();
        for r in sample_records() {
            r.apply(&mut replayed).unwrap();
        }
        direct
            .create_table(
                TableSchema::new("drug")
                    .column("drug_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .primary_key("drug_id"),
            )
            .unwrap();
        direct.insert("drug", vec![Value::Int(1), Value::text("Aspirin")]).unwrap();
        direct.create_index("drug", "name", IndexKind::Ordered).unwrap();
        direct.auto_index();
        assert_eq!(direct.to_json(), replayed.to_json());
        assert_eq!(direct.generation(), replayed.generation());
        assert_eq!(direct.schema_generation(), replayed.schema_generation());
    }
}
