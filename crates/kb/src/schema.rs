//! Table schemas: typed columns, primary keys, and foreign keys.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Column data types supported by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    Bool,
    Int,
    Float,
    Text,
}

impl ColumnType {
    /// Whether a value is admissible in a column of this type. `Null` is
    /// admissible everywhere except primary keys (checked separately).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }
}

/// A foreign-key constraint: `column` references `references_table
/// (references_column)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub column: String,
    pub references_table: String,
    pub references_column: String,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

/// Schema of a single table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Name of the primary-key column, if declared.
    pub primary_key: Option<String>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Appends a column (builder style).
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push(Column { name: name.into(), ty });
        self
    }

    /// Declares the primary key column (must already be defined).
    pub fn primary_key(mut self, name: impl Into<String>) -> Self {
        self.primary_key = Some(name.into());
        self
    }

    /// Declares a foreign key (builder style).
    pub fn foreign_key(
        mut self,
        column: impl Into<String>,
        references_table: impl Into<String>,
        references_column: impl Into<String>,
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            column: column.into(),
            references_table: references_table.into(),
            references_column: references_column.into(),
        });
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column_def(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Whether `column` is (part of) a foreign key.
    pub fn is_foreign_key(&self, column: &str) -> bool {
        self.foreign_keys.iter().any(|fk| fk.column == column)
    }

    /// Validates internal consistency: PK exists as a column, FK columns
    /// exist, column names unique.
    pub fn check(&self) -> Result<(), String> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|o| o.name == c.name) {
                return Err(format!("table `{}`: duplicate column `{}`", self.name, c.name));
            }
        }
        if let Some(pk) = &self.primary_key {
            if self.column_index(pk).is_none() {
                return Err(format!("table `{}`: primary key `{pk}` is not a column", self.name));
            }
        }
        for fk in &self.foreign_keys {
            if self.column_index(&fk.column).is_none() {
                return Err(format!(
                    "table `{}`: foreign key column `{}` is not a column",
                    self.name, fk.column
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drug() -> TableSchema {
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id")
    }

    #[test]
    fn builder_and_lookup() {
        let s = drug();
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_def("drug_id").unwrap().ty, ColumnType::Int);
        assert!(s.check().is_ok());
    }

    #[test]
    fn check_rejects_missing_pk_column() {
        let s = TableSchema::new("t").column("a", ColumnType::Int).primary_key("b");
        assert!(s.check().is_err());
    }

    #[test]
    fn check_rejects_duplicate_columns() {
        let s = TableSchema::new("t").column("a", ColumnType::Int).column("a", ColumnType::Text);
        assert!(s.check().is_err());
    }

    #[test]
    fn check_rejects_missing_fk_column() {
        let s =
            TableSchema::new("t").column("a", ColumnType::Int).foreign_key("nope", "other", "id");
        assert!(s.check().is_err());
    }

    #[test]
    fn column_type_admission() {
        assert!(ColumnType::Int.admits(&Value::Int(1)));
        assert!(ColumnType::Int.admits(&Value::Null));
        assert!(!ColumnType::Int.admits(&Value::text("x")));
        // Ints are admissible in float columns (numeric widening).
        assert!(ColumnType::Float.admits(&Value::Int(1)));
        assert!(!ColumnType::Bool.admits(&Value::Int(1)));
    }

    #[test]
    fn is_foreign_key_detection() {
        let s = TableSchema::new("dosage")
            .column("drug_id", ColumnType::Int)
            .foreign_key("drug_id", "drug", "drug_id");
        assert!(s.is_foreign_key("drug_id"));
        assert!(!s.is_foreign_key("other"));
    }
}
