//! The knowledge-base store: tables of typed rows with constraint checking
//! and a query entry point.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use obcs_cache::{CacheConfig, CacheStats, GenCache};
use serde::{Deserialize, Serialize};

use crate::index::{IndexKind, IndexSpec, SecondaryIndex};
use crate::schema::TableSchema;
use crate::sql;
use crate::stats;
use crate::value::Value;

/// Errors produced by the store and the SQL engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    TableExists(String),
    UnknownTable(String),
    UnknownColumn {
        table: String,
        column: String,
    },
    SchemaInvalid(String),
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    TypeMismatch {
        table: String,
        column: String,
        value: String,
    },
    NullPrimaryKey {
        table: String,
    },
    DuplicatePrimaryKey {
        table: String,
        key: String,
    },
    ForeignKeyViolation {
        table: String,
        column: String,
        value: String,
    },
    /// SQL parse error with position information.
    Parse(String),
    /// SQL semantic error (ambiguous column, unknown alias, ...).
    Semantic(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            KbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            KbError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            KbError::SchemaInvalid(msg) => write!(f, "invalid schema: {msg}"),
            KbError::ArityMismatch { table, expected, got } => {
                write!(f, "table `{table}` expects {expected} values, got {got}")
            }
            KbError::TypeMismatch { table, column, value } => {
                write!(f, "value `{value}` not admissible in `{table}.{column}`")
            }
            KbError::NullPrimaryKey { table } => {
                write!(f, "primary key of `{table}` cannot be NULL")
            }
            KbError::DuplicatePrimaryKey { table, key } => {
                write!(f, "duplicate primary key `{key}` in `{table}`")
            }
            KbError::ForeignKeyViolation { table, column, value } => {
                write!(f, "`{table}.{column}` = `{value}` references a missing row")
            }
            KbError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            KbError::Semantic(msg) => write!(f, "SQL error: {msg}"),
        }
    }
}

impl std::error::Error for KbError {}

/// One stored table: schema plus row data and a primary-key index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub schema: TableSchema,
    pub rows: Vec<Vec<Value>>,
    /// PK value → row position, present when the schema declares a PK.
    #[serde(skip)]
    pk_index: HashMap<Value, usize>,
    /// Secondary index *structures* (DESIGN.md §14): maintained on
    /// insert, rebuilt from rows on load, never serialised directly.
    #[serde(skip)]
    secondary: Vec<SecondaryIndex>,
    /// Durable index policy (DESIGN.md §16): the `(column, kind)` specs
    /// of `secondary`, stamped into the JSON envelope by
    /// [`KnowledgeBase::to_json`] so deserialisation rebuilds the same
    /// access paths. `None` in live tables and in pre-policy envelopes
    /// (those deserialise scan-only, exactly as before).
    index_policy: Option<Vec<IndexSpec>>,
}

impl Table {
    fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            pk_index: HashMap::new(),
            secondary: Vec::new(),
            index_policy: None,
        }
    }

    /// Finds a row by primary-key value.
    pub fn row_by_pk(&self, key: &Value) -> Option<&[Value]> {
        self.pk_index.get(key).map(|&i| self.rows[i].as_slice())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The secondary indexes on this table.
    pub fn secondary_indexes(&self) -> &[SecondaryIndex] {
        &self.secondary
    }

    /// A secondary index of `kind` on column position `col`, if any.
    pub fn index_of_kind(&self, col: usize, kind: IndexKind) -> Option<&SecondaryIndex> {
        self.secondary.iter().find(|i| i.column_pos() == col && i.kind() == kind)
    }

    /// The best index for an equality probe on column position `col`:
    /// a hash index if present, else an ordered one.
    pub fn index_for_eq(&self, col: usize) -> Option<&SecondaryIndex> {
        self.index_of_kind(col, IndexKind::Hash)
            .or_else(|| self.index_of_kind(col, IndexKind::Ordered))
    }

    /// Adds (and builds) a secondary index; `false` if an identical one
    /// already exists.
    fn add_secondary(&mut self, column: &str, kind: IndexKind) -> Result<bool, KbError> {
        let col = self.schema.column_index(column).ok_or_else(|| KbError::UnknownColumn {
            table: self.schema.name.clone(),
            column: column.to_string(),
        })?;
        if self.index_of_kind(col, kind).is_some() {
            return Ok(false);
        }
        let mut idx = SecondaryIndex::new(column, col, kind);
        idx.rebuild(&self.rows);
        self.secondary.push(idx);
        Ok(true)
    }

    fn rebuild_pk_index(&mut self) {
        self.pk_index.clear();
        if let Some(pk) = self.schema.primary_key.clone() {
            let idx = self.schema.column_index(&pk).expect("checked schema");
            for (i, row) in self.rows.iter().enumerate() {
                self.pk_index.insert(row[idx].clone(), i);
            }
        }
        for sec in &mut self.secondary {
            sec.rebuild(&self.rows);
        }
    }

    /// Reassembles a table from its durable parts — the binary snapshot
    /// reader's entry point. Indexes (PK and the recorded policy) are
    /// rebuilt from the rows, exactly as [`KnowledgeBase::from_json`]
    /// does for the JSON envelope.
    pub(crate) fn assemble(
        schema: TableSchema,
        rows: Vec<Vec<Value>>,
        policy: &[IndexSpec],
    ) -> Result<Table, KbError> {
        schema.check().map_err(KbError::SchemaInvalid)?;
        let mut t = Table::new(schema);
        for spec in policy {
            t.add_secondary(&spec.column, spec.kind)?;
        }
        t.rows = rows;
        t.rebuild_pk_index();
        Ok(t)
    }

    /// The durable `(column, kind)` specs of this table's secondary
    /// indexes, in creation order — what [`KnowledgeBase::to_json`]
    /// stamps as `index_policy` and the binary snapshot writes per
    /// table.
    pub(crate) fn index_specs(&self) -> Vec<IndexSpec> {
        self.secondary.iter().map(SecondaryIndex::spec).collect()
    }
}

/// The result of a query: column headers plus rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Output column labels (unqualified names, or `table.column` when
    /// needed for disambiguation).
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Values of the single output column; errors if the shape differs.
    pub fn single_column(&self) -> Result<Vec<&Value>, KbError> {
        if self.columns.len() != 1 {
            return Err(KbError::Semantic(format!(
                "expected a single output column, got {}",
                self.columns.len()
            )));
        }
        Ok(self.rows.iter().map(|r| &r[0]).collect())
    }

    /// Renders a compact ASCII table for transcripts and the repro harness.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// Hit/miss counters of the KB's two cache layers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KbCacheStats {
    /// Prepared-plan cache (`kb_plan` telemetry layer).
    pub plan: CacheStats,
    /// Result cache (`kb_result` telemetry layer).
    pub result: CacheStats,
}

/// The query caches riding on a [`KnowledgeBase`] (DESIGN.md §12): a
/// prepared-plan cache validated against the *schema* generation and a
/// result cache validated against the *data* generation. Cloning a KB
/// (e.g. `fork_session`) starts the clone with fresh empty caches so
/// forks never share mutable state; only the enabled flag carries over.
struct QueryCaches {
    enabled: bool,
    plan: Mutex<GenCache<Arc<sql::exec::BoundPlan>>>,
    result: Mutex<GenCache<ResultSet>>,
}

/// Plans are small; cap by count only.
const PLAN_CACHE_ENTRIES: usize = 512;

impl Default for QueryCaches {
    fn default() -> Self {
        QueryCaches {
            enabled: true,
            plan: Mutex::new(GenCache::new(CacheConfig::entries(PLAN_CACHE_ENTRIES))),
            result: Mutex::new(GenCache::new(CacheConfig::default())),
        }
    }
}

impl Clone for QueryCaches {
    fn clone(&self) -> Self {
        QueryCaches { enabled: self.enabled, ..QueryCaches::default() }
    }
}

impl fmt::Debug for QueryCaches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryCaches").field("enabled", &self.enabled).finish_non_exhaustive()
    }
}

/// Locks a cache, recovering from a poisoned mutex: the caches hold no
/// invariants across panics (worst case a half-touched LRU order), so a
/// poisoned lock is safe to re-enter.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Rough serialized size of a result set, used to cost result-cache
/// entries against the byte budget. Exactness doesn't matter — it only
/// has to scale with the real footprint.
fn approx_result_bytes(rs: &ResultSet) -> usize {
    let mut bytes = 64 + rs.columns.iter().map(|c| c.len() + 24).sum::<usize>();
    for row in &rs.rows {
        bytes += 24;
        for v in row {
            bytes += 16 + v.as_text().map_or(0, str::len);
        }
    }
    bytes
}

/// The durable form of the generation counters, stamped into the JSON
/// envelope by [`KnowledgeBase::to_json`] and restored by `from_json`.
/// Without it a reloaded KB would restart both counters at zero and
/// could collide with generation stamps held by a live `GenCache`,
/// serving stale plans or results (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationStamp {
    /// The data generation at serialisation time.
    pub data: u64,
    /// The schema generation at serialisation time.
    pub schema: u64,
}

/// The in-memory knowledge base: a named collection of tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    tables: HashMap<String, Table>,
    /// Persisted envelope copy of the generation counters; `None` in
    /// live KBs (the live counters below are authoritative) and in
    /// pre-PR9 envelopes (those reload at generation zero, as before).
    generations: Option<GenerationStamp>,
    /// Data generation: bumped by every successful mutation
    /// ([`insert`](Self::insert) and [`create_table`](Self::create_table));
    /// validates result-cache entries.
    #[serde(skip)]
    generation: u64,
    /// Schema generation: bumped by [`create_table`](Self::create_table)
    /// and [`create_index`](Self::create_index); validates plan-cache
    /// entries (plans depend on schemas and on the available access
    /// paths, never on row data, and this KB has no DROP/ALTER).
    #[serde(skip)]
    schema_generation: u64,
    /// Inverted so the serde-skip `Default` (false) means "enabled":
    /// see [`set_index_enabled`](Self::set_index_enabled).
    #[serde(skip)]
    indexes_disabled: bool,
    /// Set by [`from_json`](Self::from_json) when the envelope predates
    /// the durable format (no `generations` stamp). Recovery uses it to
    /// decide whether an `auto_index` repair sweep is warranted.
    #[serde(skip)]
    legacy_envelope: bool,
    #[serde(skip)]
    caches: QueryCaches,
}

impl KnowledgeBase {
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// Creates a table from a checked schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), KbError> {
        schema.check().map_err(KbError::SchemaInvalid)?;
        if self.tables.contains_key(&schema.name) {
            return Err(KbError::TableExists(schema.name));
        }
        self.tables.insert(schema.name.clone(), Table::new(schema));
        self.generation += 1;
        self.schema_generation += 1;
        Ok(())
    }

    /// Inserts a row, enforcing arity, types, PK uniqueness and FK
    /// referential integrity (referenced tables must be populated first).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), KbError> {
        // FK checks need immutable access to other tables, so validate
        // before mutably borrowing the target table.
        {
            let t =
                self.tables.get(table).ok_or_else(|| KbError::UnknownTable(table.to_string()))?;
            if row.len() != t.schema.columns.len() {
                return Err(KbError::ArityMismatch {
                    table: table.to_string(),
                    expected: t.schema.columns.len(),
                    got: row.len(),
                });
            }
            for (col, v) in t.schema.columns.iter().zip(&row) {
                if !col.ty.admits(v) {
                    return Err(KbError::TypeMismatch {
                        table: table.to_string(),
                        column: col.name.clone(),
                        value: v.to_string(),
                    });
                }
            }
            if let Some(pk) = &t.schema.primary_key {
                let idx = t.schema.column_index(pk).expect("checked schema");
                if row[idx].is_null() {
                    return Err(KbError::NullPrimaryKey { table: table.to_string() });
                }
                if t.pk_index.contains_key(&row[idx]) {
                    return Err(KbError::DuplicatePrimaryKey {
                        table: table.to_string(),
                        key: row[idx].to_string(),
                    });
                }
            }
            for fk in &t.schema.foreign_keys {
                let idx = t.schema.column_index(&fk.column).expect("checked schema");
                let v = &row[idx];
                if v.is_null() {
                    continue;
                }
                let target = self
                    .tables
                    .get(&fk.references_table)
                    .ok_or_else(|| KbError::UnknownTable(fk.references_table.clone()))?;
                let ok = match (&target.schema.primary_key, &fk.references_column) {
                    (Some(pk), rc) if pk == rc => target.pk_index.contains_key(v),
                    _ => {
                        let ridx =
                            target.schema.column_index(&fk.references_column).ok_or_else(|| {
                                KbError::UnknownColumn {
                                    table: fk.references_table.clone(),
                                    column: fk.references_column.clone(),
                                }
                            })?;
                        target.rows.iter().any(|r| r[ridx].sql_eq(v))
                    }
                };
                if !ok {
                    return Err(KbError::ForeignKeyViolation {
                        table: table.to_string(),
                        column: fk.column.clone(),
                        value: v.to_string(),
                    });
                }
            }
        }
        let t = self.tables.get_mut(table).expect("existence checked above");
        if let Some(pk) = t.schema.primary_key.clone() {
            let idx = t.schema.column_index(&pk).expect("checked schema");
            t.pk_index.insert(row[idx].clone(), t.rows.len());
        }
        let pos = t.rows.len() as u32;
        for sec in &mut t.secondary {
            sec.insert_row(pos, &row[sec.column_pos()]);
        }
        t.rows.push(row);
        self.generation += 1;
        Ok(())
    }

    /// Creates (and builds) a secondary index on `table.column`; `false`
    /// if an identical index already exists. Bumps both generations:
    /// the schema generation because cached plans embed access-path
    /// choices, and the data generation so PR 5's result cache revalidates
    /// against index-backed execution (DESIGN.md §14).
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<bool, KbError> {
        let t =
            self.tables.get_mut(table).ok_or_else(|| KbError::UnknownTable(table.to_string()))?;
        let created = t.add_secondary(column, kind)?;
        if created {
            self.generation += 1;
            self.schema_generation += 1;
        }
        Ok(created)
    }

    /// Stats-guided index selection over the whole KB (DESIGN.md §14):
    /// hash indexes on every primary-key and foreign-key column (join
    /// keys and point lookups), ordered indexes on high-cardinality
    /// non-categorical text columns (LIKE-prefix targets). Idempotent;
    /// returns the number of indexes newly created.
    pub fn auto_index(&mut self) -> usize {
        let policy = stats::CategoricalPolicy::default();
        let mut wanted: Vec<(String, String, IndexKind)> = Vec::new();
        for name in self.table_names() {
            let t = &self.tables[name];
            if let Some(pk) = &t.schema.primary_key {
                wanted.push((name.to_string(), pk.clone(), IndexKind::Hash));
            }
            for fk in &t.schema.foreign_keys {
                wanted.push((name.to_string(), fk.column.clone(), IndexKind::Hash));
            }
            for col in &t.schema.columns {
                if col.ty != crate::schema::ColumnType::Text {
                    continue;
                }
                let Ok(s) = stats::column_stats(self, name, &col.name) else { continue };
                if s.distinct_count > policy.max_distinct && !stats::is_categorical(&s, policy) {
                    wanted.push((name.to_string(), col.name.clone(), IndexKind::Ordered));
                }
            }
        }
        let mut created = 0;
        for (table, column, kind) in wanted {
            if self.create_index(&table, &column, kind).unwrap_or(false) {
                created += 1;
            }
        }
        created
    }

    /// Enables or disables index-backed execution at run time. Purely a
    /// routing switch — indexed and scan execution return byte-identical
    /// results (the index-oracle property test) — so no generation is
    /// bumped and cached plans/results stay valid either way.
    pub fn set_index_enabled(&mut self, on: bool) {
        self.indexes_disabled = !on;
    }

    /// Whether index-backed execution is enabled (default: yes).
    pub fn index_enabled(&self) -> bool {
        !self.indexes_disabled
    }

    /// Total number of secondary indexes across all tables.
    pub fn index_count(&self) -> usize {
        self.tables.values().map(|t| t.secondary_indexes().len()).sum()
    }

    /// Parses and executes a SQL query against the store.
    ///
    /// With caching enabled (the default), the lookup goes through two
    /// generation-checked layers keyed on the SQL text: the result cache
    /// (validated against the data generation) and the prepared-plan
    /// cache (validated against the schema generation). Cached and
    /// uncached execution return identical values by construction — a hit
    /// replays a value the same engine computed earlier at the same
    /// generation — so callers cannot observe the cache except through
    /// [`cache_stats`](Self::cache_stats). Errors are never cached.
    pub fn query(&self, sql_text: &str) -> Result<ResultSet, KbError> {
        if !self.caches.enabled {
            let stmt = sql::parser::parse(sql_text)?;
            return sql::exec::execute(self, &stmt);
        }
        if let Some(rs) = lock(&self.caches.result).get(sql_text, self.generation) {
            return Ok(rs);
        }
        // Bind the lookup result before matching: a guard held across the
        // match arms would self-deadlock on the `put` below.
        let cached_plan = lock(&self.caches.plan).get(sql_text, self.schema_generation);
        let plan = match cached_plan {
            Some(plan) => plan,
            None => {
                let stmt = sql::parser::parse(sql_text)?;
                let plan = Arc::new(sql::exec::bind(self, &stmt)?);
                lock(&self.caches.plan).put(sql_text, self.schema_generation, plan.clone(), 1);
                plan
            }
        };
        let rs = sql::exec::execute_bound(self, &plan)?;
        lock(&self.caches.result).put(
            sql_text,
            self.generation,
            rs.clone(),
            approx_result_bytes(&rs),
        );
        Ok(rs)
    }

    /// Parses and **binds** a query against the current schemas without
    /// executing it: the static front half of [`query`](Self::query)
    /// (DESIGN.md §12). Binding resolves every table and column name,
    /// relates each join to an earlier table, lowers predicates, and
    /// fixes the projection — so a successful `prepare` proves the SQL
    /// type-checks against the schema without reading a single row.
    /// Verification layers (`obcs-verify`) use this to statically check
    /// every generated query template.
    pub fn prepare(&self, sql_text: &str) -> Result<sql::exec::BoundPlan, KbError> {
        let stmt = sql::parser::parse(sql_text)?;
        sql::exec::bind(self, &stmt)
    }

    /// Enables or disables the query caches. Disabling drops every cached
    /// entry (counters are kept), so a later re-enable starts cold.
    pub fn set_cache_enabled(&mut self, on: bool) {
        self.caches.enabled = on;
        if !on {
            lock(&self.caches.plan).clear();
            lock(&self.caches.result).clear();
        }
    }

    /// Whether the query caches are enabled.
    pub fn cache_enabled(&self) -> bool {
        self.caches.enabled
    }

    /// Counters accumulated by the plan and result caches so far.
    pub fn cache_stats(&self) -> KbCacheStats {
        KbCacheStats {
            plan: lock(&self.caches.plan).stats(),
            result: lock(&self.caches.result).stats(),
        }
    }

    /// The data generation (bumped by every successful mutation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The schema generation (bumped by `create_table` / `create_index`).
    pub fn schema_generation(&self) -> u64 {
        self.schema_generation
    }

    /// Whether this KB was parsed from a pre-durability envelope (no
    /// generation stamp, no index policy). See [`from_json`](Self::from_json).
    pub fn from_legacy_envelope(&self) -> bool {
        self.legacy_envelope
    }

    /// Like [`KnowledgeBase::query`], recording a
    /// [`kb_execute`](obcs_telemetry::stage::KB_EXECUTE) span plus
    /// query/row counters on `rec` (see DESIGN.md §10).
    pub fn query_traced(
        &self,
        sql_text: &str,
        rec: &dyn obcs_telemetry::Recorder,
    ) -> Result<ResultSet, KbError> {
        let _span = obcs_telemetry::span(rec, obcs_telemetry::stage::KB_EXECUTE);
        let result = self.query(sql_text);
        rec.incr(obcs_telemetry::metric::KB_QUERIES, "");
        if let Ok(rs) = &result {
            rec.add(obcs_telemetry::metric::KB_ROWS, "", rs.rows.len() as u64);
        }
        result
    }

    /// Table lookup.
    pub fn table(&self, name: &str) -> Result<&Table, KbError> {
        self.tables.get(name).ok_or_else(|| KbError::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Table names in sorted order (deterministic iteration).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// All distinct non-null values of one column, sorted.
    pub fn distinct_values(&self, table: &str, column: &str) -> Result<Vec<Value>, KbError> {
        let t = self.table(table)?;
        let idx = t.schema.column_index(column).ok_or_else(|| KbError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })?;
        let mut vals: Vec<Value> =
            t.rows.iter().map(|r| r[idx].clone()).filter(|v| !v.is_null()).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        Ok(vals)
    }

    /// Rebuilds all PK indexes (after deserialisation).
    pub fn rebuild_indexes(&mut self) {
        for t in self.tables.values_mut() {
            t.rebuild_pk_index();
        }
    }

    /// Parses a KB from JSON, restoring the envelope (DESIGN.md §16):
    /// generation counters come back from the [`GenerationStamp`], and
    /// each table's secondary indexes are rebuilt from its recorded
    /// index policy before the PK indexes are rebuilt. Pre-policy
    /// envelopes (no `generations`, no `index_policy`) deserialise
    /// exactly as before: generation zero, scan-only.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut kb: KnowledgeBase = serde_json::from_str(json)?;
        match kb.generations.take() {
            Some(stamp) => {
                kb.generation = stamp.data;
                kb.schema_generation = stamp.schema;
            }
            None => kb.legacy_envelope = true,
        }
        for t in kb.tables.values_mut() {
            if let Some(policy) = t.index_policy.take() {
                for spec in policy {
                    // The schema the policy was recorded against is the
                    // schema being deserialised, so the column resolves;
                    // a hand-edited envelope that broke this simply
                    // loses that index (add_secondary rejects it).
                    let _ = t.add_secondary(&spec.column, spec.kind);
                }
            }
        }
        kb.rebuild_indexes();
        Ok(kb)
    }

    /// Reassembles a KB from tables plus its generation stamp — the
    /// binary snapshot reader's entry point. The tables arrive already
    /// indexed (see [`Table::assemble`]); the stamp restores the cache
    /// validation counters exactly as `from_json` does.
    pub(crate) fn assemble(tables: HashMap<String, Table>, stamp: GenerationStamp) -> Self {
        KnowledgeBase {
            tables,
            generations: None,
            generation: stamp.data,
            schema_generation: stamp.schema,
            indexes_disabled: false,
            legacy_envelope: false,
            caches: QueryCaches::default(),
        }
    }

    /// Serialises the KB with its durable envelope stamped in: the
    /// current generation counters and each table's index policy, so
    /// [`from_json`](Self::from_json) restores an equivalent KB —
    /// same data, same access paths, same cache-validation stamps.
    pub fn to_json(&self) -> String {
        let mut kb = self.clone();
        kb.generations =
            Some(GenerationStamp { data: self.generation, schema: self.schema_generation });
        for t in kb.tables.values_mut() {
            t.index_policy = Some(t.secondary.iter().map(SecondaryIndex::spec).collect());
        }
        serde_json::to_string_pretty(&kb).expect("KB serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn kb_with_drug() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        kb
    }

    #[test]
    fn create_insert_lookup() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(1), Value::text("Aspirin")]).unwrap();
        let t = kb.table("drug").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.row_by_pk(&Value::Int(1)).unwrap()[1], Value::text("Aspirin"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut kb = kb_with_drug();
        let err =
            kb.create_table(TableSchema::new("drug").column("x", ColumnType::Int)).unwrap_err();
        assert_eq!(err, KbError::TableExists("drug".into()));
    }

    #[test]
    fn arity_and_type_enforced() {
        let mut kb = kb_with_drug();
        assert!(matches!(
            kb.insert("drug", vec![Value::Int(1)]),
            Err(KbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            kb.insert("drug", vec![Value::text("x"), Value::text("y")]),
            Err(KbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn pk_constraints_enforced() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        assert!(matches!(
            kb.insert("drug", vec![Value::Int(1), Value::text("B")]),
            Err(KbError::DuplicatePrimaryKey { .. })
        ));
        assert!(matches!(
            kb.insert("drug", vec![Value::Null, Value::text("C")]),
            Err(KbError::NullPrimaryKey { .. })
        ));
    }

    #[test]
    fn fk_enforced_and_null_fk_allowed() {
        let mut kb = kb_with_drug();
        kb.create_table(
            TableSchema::new("dosage")
                .column("dosage_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .primary_key("dosage_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )
        .unwrap();
        kb.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        kb.insert("dosage", vec![Value::Int(10), Value::Int(1)]).unwrap();
        assert!(matches!(
            kb.insert("dosage", vec![Value::Int(11), Value::Int(99)]),
            Err(KbError::ForeignKeyViolation { .. })
        ));
        // NULL FK is allowed.
        kb.insert("dosage", vec![Value::Int(12), Value::Null]).unwrap();
    }

    #[test]
    fn distinct_values_sorted_deduped() {
        let mut kb = kb_with_drug();
        for (i, n) in ["B", "A", "B"].iter().enumerate() {
            kb.insert("drug", vec![Value::Int(i as i64), Value::text(*n)]).unwrap();
        }
        assert_eq!(
            kb.distinct_values("drug", "name").unwrap(),
            vec![Value::text("A"), Value::text("B")]
        );
    }

    #[test]
    fn json_roundtrip_rebuilds_pk_index() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(7), Value::text("A")]).unwrap();
        let kb2 = KnowledgeBase::from_json(&kb.to_json()).unwrap();
        assert!(kb2.table("drug").unwrap().row_by_pk(&Value::Int(7)).is_some());
        // And the rebuilt index still prevents duplicates.
        let mut kb3 = kb2.clone();
        assert!(kb3.insert("drug", vec![Value::Int(7), Value::text("B")]).is_err());
    }

    #[test]
    fn cached_query_hits_and_matches_uncached() {
        let mut kb = kb_with_drug();
        for (i, n) in [(1, "Aspirin"), (2, "Ibuprofen")] {
            kb.insert("drug", vec![Value::Int(i), Value::text(n)]).unwrap();
        }
        assert!(kb.cache_enabled(), "caching is on by default");
        let sql = "SELECT name FROM drug WHERE drug_id >= 1";
        let first = kb.query(sql).unwrap();
        let second = kb.query(sql).unwrap();
        assert_eq!(first, second);
        let stats = kb.cache_stats();
        assert_eq!(stats.result.hits, 1, "second run served from the result cache");
        assert_eq!(stats.plan.misses, 1, "plan bound once");

        let mut oracle = kb.clone();
        oracle.set_cache_enabled(false);
        assert_eq!(oracle.query(sql).unwrap(), first, "cache is value-invisible");
    }

    #[test]
    fn insert_invalidates_results_but_keeps_plans() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        let sql = "SELECT name FROM drug";
        assert_eq!(kb.query(sql).unwrap().rows.len(), 1);
        kb.insert("drug", vec![Value::Int(2), Value::text("B")]).unwrap();
        assert_eq!(kb.query(sql).unwrap().rows.len(), 2, "stale result must not serve");
        let stats = kb.cache_stats();
        assert_eq!(stats.result.invalidations, 1);
        assert_eq!(stats.plan.hits, 1, "plans survive data mutations");
    }

    #[test]
    fn create_table_invalidates_plans() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        let sql = "SELECT name FROM drug";
        kb.query(sql).unwrap();
        kb.create_table(TableSchema::new("other").column("x", ColumnType::Int)).unwrap();
        kb.query(sql).unwrap();
        assert_eq!(kb.cache_stats().plan.invalidations, 1, "schema bump drops the plan");
    }

    #[test]
    fn errors_are_not_cached() {
        let kb = kb_with_drug();
        assert!(kb.query("SELECT nope FROM drug").is_err());
        assert!(kb.query("SELECT nope FROM drug").is_err());
        let stats = kb.cache_stats();
        assert_eq!(stats.plan.hits + stats.result.hits, 0);
    }

    #[test]
    fn clone_starts_with_cold_caches() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        kb.query("SELECT name FROM drug").unwrap();
        let fork = kb.clone();
        assert!(fork.cache_enabled());
        assert_eq!(fork.cache_stats(), KbCacheStats::default(), "no shared or carried state");
    }

    #[test]
    fn create_index_invalidates_plans_and_is_idempotent() {
        let mut kb = kb_with_drug();
        for i in 0..20 {
            kb.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).unwrap();
        }
        let sql = "SELECT name FROM drug WHERE drug_id = 3";
        let before = kb.query(sql).unwrap();
        assert!(!kb.prepare(sql).unwrap().uses_index());
        assert!(kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap());
        assert_eq!(kb.query(sql).unwrap(), before, "index is value-invisible");
        let stats = kb.cache_stats();
        assert_eq!(stats.plan.invalidations, 1, "schema bump re-binds the plan");
        assert_eq!(stats.result.invalidations, 1, "data bump revalidates the result");
        assert!(kb.prepare(sql).unwrap().uses_index());
        // Identical index again: no-op, no generation churn.
        let gen = kb.generation();
        assert!(!kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap());
        assert_eq!(kb.generation(), gen);
        assert_eq!(kb.index_count(), 1);
    }

    #[test]
    fn create_index_rejects_unknown_targets() {
        let mut kb = kb_with_drug();
        assert!(matches!(
            kb.create_index("nope", "x", IndexKind::Hash),
            Err(KbError::UnknownTable(_))
        ));
        assert!(matches!(
            kb.create_index("drug", "nope", IndexKind::Hash),
            Err(KbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn inserts_maintain_secondary_indexes() {
        let mut kb = kb_with_drug();
        kb.create_index("drug", "name", IndexKind::Ordered).unwrap();
        for (i, n) in [(1, "Cardiozol"), (2, "Aspirin"), (3, "Cardiomax")] {
            kb.insert("drug", vec![Value::Int(i), Value::text(n)]).unwrap();
        }
        let idx = kb.table("drug").unwrap().index_for_eq(1).unwrap();
        assert_eq!(idx.probe_prefix("Cardio"), Some(vec![0, 2]));
        assert_eq!(idx.distinct_count(), 3);
    }

    #[test]
    fn auto_index_covers_keys_and_high_cardinality_text() {
        let mut kb = kb_with_drug();
        kb.create_table(
            TableSchema::new("dosage")
                .column("dosage_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .primary_key("dosage_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )
        .unwrap();
        for i in 0..100 {
            kb.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).unwrap();
            kb.insert("dosage", vec![Value::Int(i), Value::Int(i)]).unwrap();
        }
        let created = kb.auto_index();
        // drug.drug_id (PK hash), drug.name (ordered), dosage.dosage_id
        // (PK hash), dosage.drug_id (FK hash).
        assert_eq!(created, 4);
        assert_eq!(kb.auto_index(), 0, "idempotent");
        let drug = kb.table("drug").unwrap();
        assert!(drug.index_of_kind(0, IndexKind::Hash).is_some());
        assert!(drug.index_of_kind(1, IndexKind::Ordered).is_some());
        assert!(kb.index_enabled());
    }

    #[test]
    fn json_roundtrip_rebuilds_secondary_indexes_from_policy() {
        let mut kb = kb_with_drug();
        for i in 0..20 {
            kb.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).unwrap();
        }
        kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        kb.create_index("drug", "name", IndexKind::Ordered).unwrap();
        let kb2 = KnowledgeBase::from_json(&kb.to_json()).unwrap();
        assert_eq!(kb2.index_count(), 2, "the recorded index policy rebuilds secondaries");
        let t = kb2.table("drug").unwrap();
        assert!(t.index_of_kind(0, IndexKind::Hash).is_some());
        assert!(t.index_of_kind(1, IndexKind::Ordered).is_some());
        assert_eq!(
            kb2.query("SELECT name FROM drug WHERE drug_id = 1").unwrap().rows.len(),
            1,
            "rebuilt indexes answer correctly"
        );
        // Regression: the reload path must keep the planner's access
        // paths — a dropped index here regresses point lookups to scans.
        for sql in [
            "SELECT name FROM drug WHERE drug_id = 3",
            "SELECT drug_id FROM drug WHERE name LIKE 'Drug1%'",
        ] {
            assert_eq!(
                kb2.prepare(sql).unwrap().access_label(),
                kb.prepare(sql).unwrap().access_label(),
                "access path changed across a JSON round-trip for {sql:?}"
            );
        }
        assert!(kb2.prepare("SELECT name FROM drug WHERE drug_id = 3").unwrap().uses_index());
    }

    #[test]
    fn json_roundtrip_preserves_generation_counters() {
        let mut kb = kb_with_drug();
        kb.insert("drug", vec![Value::Int(1), Value::text("A")]).unwrap();
        kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        assert!(kb.generation() > 0 && kb.schema_generation() > 0);
        let kb2 = KnowledgeBase::from_json(&kb.to_json()).unwrap();
        assert_eq!(kb2.generation(), kb.generation(), "data generation survives reload");
        assert_eq!(kb2.schema_generation(), kb.schema_generation(), "schema generation survives");
        // And keeps advancing from there, never re-treading old stamps.
        let mut kb3 = kb2.clone();
        kb3.insert("drug", vec![Value::Int(2), Value::text("B")]).unwrap();
        assert_eq!(kb3.generation(), kb.generation() + 1);
    }

    #[test]
    fn pre_policy_envelope_still_loads_scan_only_at_generation_zero() {
        // A committed artifact written before the durable envelope: no
        // `generations`, no `index_policy`. It must parse, scan-only.
        let json = r#"{
            "tables": {
                "drug": {
                    "schema": {
                        "name": "drug",
                        "columns": [
                            {"name": "drug_id", "ty": "Int"},
                            {"name": "name", "ty": "Text"}
                        ],
                        "primary_key": "drug_id",
                        "foreign_keys": []
                    },
                    "rows": [[{"Int": 1}, {"Text": "Aspirin"}]]
                }
            }
        }"#;
        let kb = KnowledgeBase::from_json(json).expect("old envelope parses");
        assert_eq!(kb.generation(), 0);
        assert_eq!(kb.schema_generation(), 0);
        assert_eq!(kb.index_count(), 0, "no recorded policy, no indexes");
        assert_eq!(kb.query("SELECT name FROM drug WHERE drug_id = 1").unwrap().rows.len(), 1);
    }

    #[test]
    fn table_names_sorted() {
        let mut kb = kb_with_drug();
        kb.create_table(TableSchema::new("a_table").column("x", ColumnType::Int)).unwrap();
        assert_eq!(kb.table_names(), vec!["a_table", "drug"]);
    }
}
