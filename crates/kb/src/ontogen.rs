//! Data-driven ontology generation from the KB schema and instance data —
//! the paper's automated ontology-creation path (\[18\], §3 "Ontology
//! Creation", option 2).
//!
//! Inference rules:
//!
//! * every table becomes a concept (CamelCased table name);
//! * every non-key column becomes a data property;
//! * every foreign key becomes a functional object property named after the
//!   FK column (stripped of `_id`), or `has<Target>` when the FK column is
//!   just the target's key name;
//! * a table whose *primary key is also a foreign key* to another table is
//!   a specialisation: `child isA parent`;
//! * when all isA children of a parent have *disjoint and exhaustive*
//!   primary-key sets over the parent's keys (checked against instance
//!   data), the isA group is upgraded to a `unionOf` — matching the paper's
//!   use of data statistics to discover union semantics.

use obcs_ontology::{ConceptId, Ontology, RelationKind};

use crate::store::{KbError, KnowledgeBase};
use crate::value::Value;

/// Options controlling generation.
#[derive(Debug, Clone, Copy)]
pub struct OntogenOptions {
    /// Upgrade exhaustive disjoint isA families to unionOf (needs data).
    pub detect_unions: bool,
}

impl Default for OntogenOptions {
    fn default() -> Self {
        OntogenOptions { detect_unions: true }
    }
}

/// Generates a domain ontology from the KB's schema and data.
pub fn generate_ontology(
    kb: &KnowledgeBase,
    name: &str,
    options: OntogenOptions,
) -> Result<Ontology, KbError> {
    let mut onto = Ontology::new(name);
    let tables = kb.table_names();

    // Pass 1: concepts and data properties.
    let mut concept_of: Vec<(String, ConceptId)> = Vec::new();
    for t in &tables {
        let table = kb.table(t)?;
        let concept_name = camel_case(t);
        let cid = onto
            .add_concept(&concept_name)
            .map_err(|e| KbError::Semantic(format!("ontology generation: {e}")))?;
        concept_of.push(((*t).to_string(), cid));
        for col in &table.schema.columns {
            let is_pk = table.schema.primary_key.as_deref() == Some(col.name.as_str());
            let is_fk = table.schema.is_foreign_key(&col.name);
            if !is_pk && !is_fk {
                onto.add_data_property(cid, &col.name)
                    .map_err(|e| KbError::Semantic(format!("ontology generation: {e}")))?;
            }
        }
    }
    let concept_for = |table: &str| -> Option<ConceptId> {
        concept_of.iter().find(|(t, _)| t == table).map(|&(_, c)| c)
    };

    // Pass 2: relationships. PK-as-FK → isA candidate; other FK →
    // functional object property.
    let mut isa_children: Vec<(ConceptId, ConceptId, String)> = Vec::new(); // (child, parent, child table)
    for t in &tables {
        let table = kb.table(t)?;
        let source = concept_for(t).expect("pass 1 covered all tables");
        for fk in &table.schema.foreign_keys {
            let Some(target) = concept_for(&fk.references_table) else {
                continue;
            };
            let pk_is_fk = table.schema.primary_key.as_deref() == Some(fk.column.as_str());
            if pk_is_fk && source != target {
                isa_children.push((source, target, (*t).to_string()));
            } else if source != target || !pk_is_fk {
                let rel = relationship_name(&fk.column, &fk.references_table);
                onto.add_object_property(&rel, source, target, RelationKind::Functional)
                    .map_err(|e| KbError::Semantic(format!("ontology generation: {e}")))?;
            }
        }
    }

    // Pass 3: group isA children per parent; upgrade to unionOf when the
    // children partition the parent's key set.
    let mut parents: Vec<ConceptId> = isa_children.iter().map(|&(_, p, _)| p).collect();
    parents.sort();
    parents.dedup();
    for parent in parents {
        let children: Vec<&(ConceptId, ConceptId, String)> =
            isa_children.iter().filter(|&&(_, p, _)| p == parent).collect();
        let make_union = options.detect_unions
            && children.len() >= 2
            && partitions_parent(kb, &concept_of, parent, &children)?;
        for &(child, _, _) in &children {
            if make_union {
                onto.add_object_property("unionOf", *child, parent, RelationKind::UnionOf)
            } else {
                onto.add_is_a(*child, parent)
            }
            .map_err(|e| KbError::Semantic(format!("ontology generation: {e}")))?;
        }
    }
    Ok(onto)
}

/// Do the children's PK sets partition (disjoint + exhaustive) the parent's
/// PK set?
fn partitions_parent(
    kb: &KnowledgeBase,
    concept_of: &[(String, ConceptId)],
    parent: ConceptId,
    children: &[&(ConceptId, ConceptId, String)],
) -> Result<bool, KbError> {
    let parent_table = concept_of
        .iter()
        .find(|&&(_, c)| c == parent)
        .map(|(t, _)| t.clone())
        .expect("parent concept came from a table");
    let parent_keys = pk_values(kb, &parent_table)?;
    if parent_keys.is_empty() {
        return Ok(false);
    }
    let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
    let mut total = 0usize;
    for (_, _, child_table) in children.iter().copied() {
        let keys = pk_values(kb, child_table)?;
        total += keys.len();
        for k in keys {
            if !seen.insert(k) {
                return Ok(false); // overlap → not disjoint
            }
        }
    }
    // Exhaustive: every parent key covered, and no stray child keys.
    Ok(total == parent_keys.len() && parent_keys.iter().all(|k| seen.contains(k)))
}

fn pk_values(kb: &KnowledgeBase, table: &str) -> Result<Vec<Value>, KbError> {
    let t = kb.table(table)?;
    let Some(pk) = &t.schema.primary_key else {
        return Ok(Vec::new());
    };
    kb.distinct_values(table, pk)
}

/// `drug_food_interaction` → `DrugFoodInteraction`.
pub fn camel_case(snake: &str) -> String {
    snake
        .split('_')
        .filter(|s| !s.is_empty())
        .map(|s| {
            let mut c = s.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Derives a relationship name from an FK column: `treats_id` → `treats`,
/// `drug_id` → `hasDrug` (generic possession when the column is just the
/// target's key).
fn relationship_name(fk_column: &str, target_table: &str) -> String {
    let stripped = fk_column.strip_suffix("_id").unwrap_or(fk_column);
    if stripped == target_table || stripped.is_empty() {
        format!("has{}", camel_case(target_table))
    } else {
        stripped.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableSchema};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn kb() -> Result<KnowledgeBase, Box<dyn std::error::Error>> {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("brand", ColumnType::Text)
                .primary_key("drug_id"),
        )?;
        kb.create_table(
            TableSchema::new("precaution")
                .column("prec_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("description", ColumnType::Text)
                .primary_key("prec_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )?;
        // Risk hierarchy: risk(pk), contra_indication(pk=fk), black_box_warning(pk=fk)
        kb.create_table(
            TableSchema::new("risk")
                .column("risk_id", ColumnType::Int)
                .column("summary", ColumnType::Text)
                .primary_key("risk_id"),
        )?;
        for child in ["contra_indication", "black_box_warning"] {
            kb.create_table(
                TableSchema::new(child)
                    .column("risk_id", ColumnType::Int)
                    .column("detail", ColumnType::Text)
                    .primary_key("risk_id")
                    .foreign_key("risk_id", "risk", "risk_id"),
            )?;
        }
        Ok(kb)
    }

    fn populate_union(kb: &mut KnowledgeBase) -> Result<(), Box<dyn std::error::Error>> {
        for i in 0..6 {
            kb.insert("risk", vec![Value::Int(i), Value::text(format!("r{i}"))])?;
        }
        for i in 0..3 {
            kb.insert("contra_indication", vec![Value::Int(i), Value::text("ci")])?;
        }
        for i in 3..6 {
            kb.insert("black_box_warning", vec![Value::Int(i), Value::text("bbw")])?;
        }
        Ok(())
    }

    #[test]
    fn tables_become_concepts_with_data_properties() -> TestResult {
        let kb = kb()?;
        let o = generate_ontology(&kb, "gen", OntogenOptions::default())?;
        let drug = o.concept_by_name("Drug").ok_or("Drug concept missing")?;
        let props: Vec<&str> = o.data_properties_of(drug.id).map(|p| p.name.as_str()).collect();
        assert_eq!(props, vec!["name", "brand"], "keys are not data properties");
        assert!(o.concept_by_name("Precaution").is_some());
        assert!(o.concept_by_name("BlackBoxWarning").is_some());
        Ok(())
    }

    #[test]
    fn fk_becomes_functional_relationship() -> TestResult {
        let kb = kb()?;
        let o = generate_ontology(&kb, "gen", OntogenOptions::default())?;
        let prec = o.concept_id("Precaution")?;
        let rels: Vec<_> =
            o.outgoing(prec).filter(|op| op.kind == RelationKind::Functional).collect();
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].name, "hasDrug");
        assert_eq!(o.concept_name(rels[0].target), "Drug");
        Ok(())
    }

    #[test]
    fn pk_as_fk_yields_isa_without_union_data() -> TestResult {
        let kb = kb()?; // empty instance data → cannot verify partition
        let o = generate_ontology(&kb, "gen", OntogenOptions::default())?;
        let risk = o.concept_id("Risk")?;
        assert_eq!(o.is_a_children(risk).len(), 2);
        assert!(o.union_members(risk).is_empty());
        Ok(())
    }

    #[test]
    fn partitioning_children_upgrade_to_union() -> TestResult {
        let mut kb = kb()?;
        populate_union(&mut kb)?;
        let o = generate_ontology(&kb, "gen", OntogenOptions::default())?;
        let risk = o.concept_id("Risk")?;
        assert_eq!(o.union_members(risk).len(), 2);
        assert!(o.is_a_children(risk).is_empty());
        Ok(())
    }

    #[test]
    fn overlap_prevents_union() -> TestResult {
        let mut kb = kb()?;
        populate_union(&mut kb)?;
        // Key 0 is already a contra_indication; adding it as a black box
        // warning makes the children overlap → not disjoint.
        kb.insert("black_box_warning", vec![Value::Int(0), Value::text("dup")])?;
        let o = generate_ontology(&kb, "gen", OntogenOptions::default())?;
        let risk = o.concept_id("Risk")?;
        assert!(o.union_members(risk).is_empty(), "overlapping children → isA only");
        assert_eq!(o.is_a_children(risk).len(), 2);

        // Non-exhaustive coverage also prevents the upgrade.
        let mut kb2 = self::kb()?;
        populate_union(&mut kb2)?;
        kb2.insert("risk", vec![Value::Int(6), Value::text("uncovered")])?;
        let o2 = generate_ontology(&kb2, "gen", OntogenOptions::default())?;
        let risk2 = o2.concept_id("Risk")?;
        assert!(o2.union_members(risk2).is_empty(), "non-exhaustive → isA only");
        Ok(())
    }

    #[test]
    fn union_detection_can_be_disabled() -> TestResult {
        let mut kb = kb()?;
        populate_union(&mut kb)?;
        let o = generate_ontology(&kb, "gen", OntogenOptions { detect_unions: false })?;
        let risk = o.concept_id("Risk")?;
        assert!(o.union_members(risk).is_empty());
        assert_eq!(o.is_a_children(risk).len(), 2);
        Ok(())
    }

    #[test]
    fn camel_case_conversion() {
        assert_eq!(camel_case("drug"), "Drug");
        assert_eq!(camel_case("drug_food_interaction"), "DrugFoodInteraction");
        assert_eq!(camel_case("__x__"), "X");
    }

    #[test]
    fn relationship_naming() {
        assert_eq!(relationship_name("drug_id", "drug"), "hasDrug");
        assert_eq!(relationship_name("treats_id", "indication"), "treats");
        assert_eq!(relationship_name("cause", "drug"), "cause");
    }

    #[test]
    fn generated_ontology_validates() -> TestResult {
        let mut kb = kb()?;
        populate_union(&mut kb)?;
        let o = generate_ontology(&kb, "gen", OntogenOptions::default())?;
        assert!(obcs_ontology::validate(&o).is_empty());
        Ok(())
    }
}
