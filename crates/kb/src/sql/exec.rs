//! Executor for the SQL subset, split into two phases (DESIGN.md §12):
//!
//! * **bind** — schema-dependent name resolution: table lookups, column
//!   references, predicate lowering, projection naming. Produces a
//!   [`BoundPlan`] that depends only on the schemas of the referenced
//!   tables, so the store can reuse it across executions of the same SQL
//!   text (the prepared-plan cache).
//! * **execute** — row-dependent work: hash joins, filtering, projection,
//!   DISTINCT/ORDER BY/LIMIT, driven entirely by a `BoundPlan`.

use std::collections::{HashMap, HashSet};

use crate::index::IndexKind;
use crate::stats;
use crate::store::{KbError, KnowledgeBase, ResultSet};
use crate::value::Value;

use super::ast::{ColumnRef, CompareOp, Predicate, Select, SelectItem};

/// A bound column: which joined-table slot and which column index within it.
#[derive(Debug, Clone, Copy)]
struct Bound {
    slot: usize,
    col: usize,
}

/// Per-binding schema info used during name resolution.
struct Binding<'a> {
    name: &'a str,
    table: &'a str,
    columns: Vec<&'a str>,
}

/// One bound join: which table fills the new slot, the already-bound
/// column it matches against, and the key column within the new table.
#[derive(Debug, Clone)]
struct BoundJoin {
    table: String,
    existing: Bound,
    incoming: Bound,
}

/// A fully bound, reusable query plan: every name resolved to slot/column
/// indices, every predicate lowered, the projection list and output
/// headers fixed. A plan depends only on the *schemas* of the referenced
/// tables (which this KB never alters after creation), never on row data —
/// that is what makes it safe to cache across executions (DESIGN.md §12).
#[derive(Debug)]
pub struct BoundPlan {
    from_table: String,
    joins: Vec<BoundJoin>,
    preds: Vec<(Bound, CompareOp, PredRhs)>,
    projections: Vec<Bound>,
    out_cols: Vec<String>,
    distinct: bool,
    /// ORDER BY as (position in the projection, descending).
    order: Option<(usize, bool)>,
    limit: Option<usize>,
    /// How the FROM table is read (DESIGN.md §14). Chosen at bind time
    /// from the available indexes and cardinality estimates — safe to
    /// cache because `create_index` bumps the schema generation.
    access: AccessPath,
}

/// Index-backed access path over the FROM table. Always a *candidate
/// generator*: the executor re-applies every predicate to the rows an
/// index yields, so any path produces byte-identical results to a scan.
#[derive(Debug, Clone)]
enum AccessPath {
    /// Read every row.
    Scan,
    /// Probe an equality index with the literal of `preds[pred]`.
    IndexEq { pred: usize },
    /// Range-read an ordered index over the literal prefix of the LIKE
    /// pattern in `preds[pred]`.
    IndexPrefix { pred: usize, prefix: String },
}

impl BoundPlan {
    /// The output column labels the plan projects, in SELECT-list order.
    /// Labels are unqualified except where two projected columns share a
    /// name across different bindings (then `binding.column`).
    pub fn columns(&self) -> &[String] {
        &self.out_cols
    }

    /// The tables the plan reads: the FROM table followed by each join's
    /// table, in join order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.from_table.as_str()).chain(self.joins.iter().map(|j| j.table.as_str()))
    }

    /// Number of lowered WHERE predicates.
    pub fn predicate_count(&self) -> usize {
        self.preds.len()
    }

    /// Whether the planner chose an index-backed access path for the
    /// FROM table (as opposed to a full scan).
    pub fn uses_index(&self) -> bool {
        !matches!(self.access, AccessPath::Scan)
    }

    /// A short human-readable label for the chosen access path
    /// (`scan`, `index_eq`, `index_prefix`) — used by the verify
    /// bind-check report and tests.
    pub fn access_label(&self) -> &'static str {
        match self.access {
            AccessPath::Scan => "scan",
            AccessPath::IndexEq { .. } => "index_eq",
            AccessPath::IndexPrefix { .. } => "index_prefix",
        }
    }
}

/// The literal prefix of a LIKE pattern: everything before the first
/// wildcard (`%` or `_`). A row can only match the pattern if its text
/// starts with this prefix, which is what makes an ordered-index range
/// a sound candidate generator.
fn like_prefix(pattern: &str) -> &str {
    match pattern.find(['%', '_']) {
        Some(i) => &pattern[..i],
        None => pattern,
    }
}

/// Binds a parsed SELECT against the current schemas, producing a
/// reusable [`BoundPlan`].
pub fn bind(kb: &KnowledgeBase, stmt: &Select) -> Result<BoundPlan, KbError> {
    // Resolve bindings: FROM table plus one per join.
    let mut bindings: Vec<Binding<'_>> = Vec::with_capacity(1 + stmt.joins.len());
    let from_table = kb.table(&stmt.from.table)?;
    bindings.push(Binding {
        name: stmt.from.binding(),
        table: &stmt.from.table,
        columns: from_table.schema.columns.iter().map(|c| c.name.as_str()).collect(),
    });
    for join in &stmt.joins {
        let t = kb.table(&join.table.table)?;
        bindings.push(Binding {
            name: join.table.binding(),
            table: &join.table.table,
            columns: t.schema.columns.iter().map(|c| c.name.as_str()).collect(),
        });
    }
    // Reject duplicate binding names.
    {
        let mut seen = HashSet::new();
        for b in &bindings {
            if !seen.insert(b.name) {
                return Err(KbError::Semantic(format!(
                    "duplicate table binding `{}`; add aliases",
                    b.name
                )));
            }
        }
    }

    let resolve = |cref: &ColumnRef| -> Result<Bound, KbError> {
        match &cref.qualifier {
            Some(q) => {
                let slot = bindings
                    .iter()
                    .position(|b| b.name == q)
                    .ok_or_else(|| KbError::Semantic(format!("unknown table or alias `{q}`")))?;
                let col =
                    bindings[slot].columns.iter().position(|c| *c == cref.column).ok_or_else(
                        || KbError::UnknownColumn {
                            table: bindings[slot].table.to_string(),
                            column: cref.column.clone(),
                        },
                    )?;
                Ok(Bound { slot, col })
            }
            None => {
                let mut found = None;
                for (slot, b) in bindings.iter().enumerate() {
                    if let Some(col) = b.columns.iter().position(|c| *c == cref.column) {
                        if found.is_some() {
                            return Err(KbError::Semantic(format!(
                                "ambiguous column `{}`",
                                cref.column
                            )));
                        }
                        found = Some(Bound { slot, col });
                    }
                }
                found.ok_or_else(|| KbError::Semantic(format!("unknown column `{}`", cref.column)))
            }
        }
    };

    // Bind each join's equality key pair.
    let mut joins: Vec<BoundJoin> = Vec::with_capacity(stmt.joins.len());
    for (join_idx, join) in stmt.joins.iter().enumerate() {
        let left_bound = resolve(&join.left)?;
        let right_bound = resolve(&join.right)?;
        let new_slot = join_idx + 1;
        // Exactly one side must refer to the newly joined table.
        let (existing, incoming) = if right_bound.slot == new_slot && left_bound.slot < new_slot {
            (left_bound, right_bound)
        } else if left_bound.slot == new_slot && right_bound.slot < new_slot {
            (right_bound, left_bound)
        } else {
            return Err(KbError::Semantic(format!(
                "join condition must relate `{}` to an earlier table",
                join.table.binding()
            )));
        };
        joins.push(BoundJoin { table: join.table.table.clone(), existing, incoming });
    }

    // Lower predicates.
    let preds: Vec<(Bound, CompareOp, PredRhs)> = stmt
        .predicates
        .iter()
        .map(|p| match p {
            Predicate::ColumnLiteral { column, op, literal } => {
                // CONTAINS needles are lowered once here, not once per row.
                let rhs = match (op, literal.as_text()) {
                    (CompareOp::Contains, Some(t)) => PredRhs::Needle(t.to_lowercase()),
                    _ => PredRhs::Literal(literal.clone()),
                };
                Ok((resolve(column)?, *op, rhs))
            }
            Predicate::ColumnColumn { left, op, right } => {
                Ok((resolve(left)?, *op, PredRhs::Column(resolve(right)?)))
            }
        })
        .collect::<Result<_, KbError>>()?;

    // Bind the projection. Explicit column items resolve first so
    // same-named columns projected from *different* bindings can be
    // qualified (`a.name`, `b.name` on a self-join), matching the `Star`
    // path; a name projected from a single binding stays unqualified.
    let mut column_items: Vec<(usize, &ColumnRef, Bound)> = Vec::new();
    for (pos, item) in stmt.items.iter().enumerate() {
        if let SelectItem::Column(cref) = item {
            column_items.push((pos, cref, resolve(cref)?));
        }
    }
    let needs_qualifier = |cref: &ColumnRef, bound: Bound| {
        column_items.iter().any(|&(_, c, b)| c.column == cref.column && b.slot != bound.slot)
    };
    let mut out_cols: Vec<String> = Vec::new();
    let mut projections: Vec<Bound> = Vec::new();
    for (pos, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for (slot, b) in bindings.iter().enumerate() {
                    for (col, name) in b.columns.iter().enumerate() {
                        out_cols.push(if bindings.len() > 1 {
                            format!("{}.{name}", b.name)
                        } else {
                            (*name).to_string()
                        });
                        projections.push(Bound { slot, col });
                    }
                }
            }
            SelectItem::Column(cref) => {
                let &(_, _, bound) = column_items
                    .iter()
                    .find(|&&(p, _, _)| p == pos)
                    .expect("every column item was resolved above");
                out_cols.push(if needs_qualifier(cref, bound) {
                    format!("{}.{}", bindings[bound.slot].name, cref.column)
                } else {
                    cref.column.clone()
                });
                projections.push(bound);
            }
        }
    }

    // Bind ORDER BY to a position in the projection.
    let order = match &stmt.order_by {
        Some(order) => {
            let key_bound = resolve(&order.column)?;
            let key_pos = projections
                .iter()
                .position(|b| b.slot == key_bound.slot && b.col == key_bound.col)
                .ok_or_else(|| {
                    KbError::Semantic(format!(
                        "ORDER BY column `{}` must appear in the SELECT list",
                        order.column
                    ))
                })?;
            Some((key_pos, order.descending))
        }
        None => None,
    };

    // Access-path selection (DESIGN.md §14): among the FROM table's
    // indexable predicates, pick the one with the lowest estimated
    // result cardinality, and only if it beats a meaningful fraction of
    // a full scan. Estimates come from the O(1) distinct-key counts the
    // indexes maintain (`stats::estimated_eq_rows`), so binding stays
    // row-data-free except for these counters.
    let rows = from_table.len() as f64;
    let mut access = AccessPath::Scan;
    let mut best = rows / 2.0;
    for (i, (bound, op, rhs)) in preds.iter().enumerate() {
        if bound.slot != 0 {
            continue;
        }
        match (op, rhs) {
            (CompareOp::Eq, PredRhs::Literal(_)) => {
                let column = bindings[0].columns[bound.col];
                if let Some(est) = stats::estimated_eq_rows(kb, &stmt.from.table, column) {
                    if est < best {
                        best = est;
                        access = AccessPath::IndexEq { pred: i };
                    }
                }
            }
            (CompareOp::Like, PredRhs::Literal(v)) => {
                let Some(prefix) = v.as_text().map(like_prefix) else { continue };
                if prefix.is_empty()
                    || from_table.index_of_kind(bound.col, IndexKind::Ordered).is_none()
                {
                    continue;
                }
                // No prefix histograms yet: assume a literal prefix
                // narrows to ~10% of the table, which ranks it above a
                // scan but below any selective equality index.
                let est = rows / 10.0;
                if est < best {
                    best = est;
                    access = AccessPath::IndexPrefix { pred: i, prefix: prefix.to_string() };
                }
            }
            _ => {}
        }
    }

    Ok(BoundPlan {
        from_table: stmt.from.table.clone(),
        joins,
        preds,
        projections,
        out_cols,
        distinct: stmt.distinct,
        order,
        limit: stmt.limit,
        access,
    })
}

/// Executes a bound plan against the knowledge base's current rows.
pub fn execute_bound(kb: &KnowledgeBase, plan: &BoundPlan) -> Result<ResultSet, KbError> {
    // Start with the base table's rows as single-slot tuples — either
    // every row (scan) or the ascending candidate positions an index
    // yields. Candidates are a superset of the matching rows in row
    // order, and every predicate is re-applied below, so both starts
    // produce byte-identical results. A probe may decline (`None` from
    // a saturated or inexact index), in which case we scan.
    // A tuple is a Vec of row references, one per slot filled so far.
    let from_table = kb.table(&plan.from_table)?;
    let candidates: Option<Vec<u32>> = if kb.index_enabled() {
        match &plan.access {
            AccessPath::Scan => None,
            AccessPath::IndexEq { pred } => {
                let (bound, _, rhs) = &plan.preds[*pred];
                match rhs {
                    PredRhs::Literal(key) => {
                        from_table.index_for_eq(bound.col).and_then(|idx| idx.probe_sql_eq(key))
                    }
                    _ => None,
                }
            }
            AccessPath::IndexPrefix { pred, prefix } => {
                let (bound, _, _) = &plan.preds[*pred];
                from_table
                    .index_of_kind(bound.col, IndexKind::Ordered)
                    .and_then(|idx| idx.probe_prefix(prefix))
            }
        }
    } else {
        None
    };
    let mut tuples: Vec<Vec<&[Value]>> = match &candidates {
        Some(positions) => {
            positions.iter().map(|&p| vec![from_table.rows[p as usize].as_slice()]).collect()
        }
        None => from_table.rows.iter().map(|r| vec![r.as_slice()]).collect(),
    };

    // Apply each join with a hash join on the equality key. When the
    // incoming table carries a persistent hash index on the key column,
    // probe it instead of building a per-query map: both group rows by
    // raw `Value` equality in insertion order, so the output tuples are
    // identical either way.
    for join in &plan.joins {
        let right_table = kb.table(&join.table)?;
        let persistent = if kb.index_enabled() {
            right_table.index_of_kind(join.incoming.col, IndexKind::Hash)
        } else {
            None
        };
        let mut next = Vec::new();
        if let Some(idx) = persistent {
            for tuple in &tuples {
                let key = &tuple[join.existing.slot][join.existing.col];
                if key.is_null() {
                    continue;
                }
                if let Some(positions) = idx.probe_raw(key) {
                    for &p in positions {
                        let mut t = tuple.clone();
                        t.push(right_table.rows[p as usize].as_slice());
                        next.push(t);
                    }
                }
            }
        } else {
            // Build hash index over the incoming table's key column.
            let mut index: HashMap<&Value, Vec<&[Value]>> = HashMap::new();
            for row in &right_table.rows {
                let key = &row[join.incoming.col];
                if !key.is_null() {
                    index.entry(key).or_default().push(row.as_slice());
                }
            }
            for tuple in &tuples {
                let key = &tuple[join.existing.slot][join.existing.col];
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = index.get(key) {
                    for m in matches {
                        let mut t = tuple.clone();
                        t.push(m);
                        next.push(t);
                    }
                }
            }
        }
        tuples = next;
    }

    // Filter.
    tuples.retain(|tuple| {
        plan.preds.iter().all(|(bound, op, rhs)| {
            let lhs = &tuple[bound.slot][bound.col];
            match rhs {
                PredRhs::Literal(v) => compare(lhs, *op, v),
                PredRhs::Column(b) => compare(lhs, *op, &tuple[b.slot][b.col]),
                PredRhs::Needle(needle) => {
                    lhs.as_text().is_some_and(|s| contains_lowered(s, needle))
                }
            }
        })
    });

    // Project.
    let mut rows: Vec<Vec<Value>> = tuples
        .iter()
        .map(|t| plan.projections.iter().map(|b| t[b.slot][b.col].clone()).collect())
        .collect();

    // DISTINCT.
    if plan.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }

    // ORDER BY (bound to a projection position at bind time).
    if let Some((key_pos, descending)) = plan.order {
        rows.sort_by(|a, b| {
            let ord = a[key_pos].total_cmp(&b[key_pos]);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    // LIMIT.
    if let Some(n) = plan.limit {
        rows.truncate(n);
    }

    Ok(ResultSet { columns: plan.out_cols.clone(), rows })
}

/// Executes a parsed SELECT against the knowledge base: bind + execute.
pub fn execute(kb: &KnowledgeBase, stmt: &Select) -> Result<ResultSet, KbError> {
    execute_bound(kb, &bind(kb, stmt)?)
}

#[derive(Debug)]
enum PredRhs {
    Literal(Value),
    Column(Bound),
    /// Pre-lowered CONTAINS needle (text literal predicates only).
    Needle(String),
}

fn compare(lhs: &Value, op: CompareOp, rhs: &Value) -> bool {
    use std::cmp::Ordering::*;
    if lhs.is_null() || rhs.is_null() {
        return false;
    }
    match op {
        CompareOp::Eq => lhs.sql_eq(rhs),
        CompareOp::Ne => !lhs.sql_eq(rhs),
        CompareOp::Lt => lhs.total_cmp(rhs) == Less,
        CompareOp::Le => lhs.total_cmp(rhs) != Greater,
        CompareOp::Gt => lhs.total_cmp(rhs) == Greater,
        CompareOp::Ge => lhs.total_cmp(rhs) != Less,
        CompareOp::Like => match (lhs.as_text(), rhs.as_text()) {
            (Some(s), Some(pat)) => like_match(s, pat),
            _ => false,
        },
        CompareOp::Contains => match (lhs.as_text(), rhs.as_text()) {
            (Some(s), Some(needle)) => contains_lowered(s, &needle.to_lowercase()),
            _ => false,
        },
    }
}

/// Case-insensitive substring test against a pre-lowered needle. ASCII
/// text (the overwhelmingly common case in this KB) is scanned without
/// allocating; anything else falls back to a full lowercase pass.
fn contains_lowered(haystack: &str, needle_lower: &str) -> bool {
    if haystack.is_ascii() && needle_lower.is_ascii() {
        let h = haystack.as_bytes();
        let n = needle_lower.as_bytes();
        n.is_empty() || h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
    } else {
        haystack.to_lowercase().contains(needle_lower)
    }
}

/// SQL LIKE with `%` (any sequence) and `_` (any single char) wildcards.
///
/// Iterative two-pointer matcher: on a mismatch it backtracks to the most
/// recent `%` and lets it swallow one more character. Worst case is
/// O(|s|·|pattern|) — the naive recursive formulation is exponential on
/// patterns like `%a%a%a%b`, which generated traffic can produce.
fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0, 0);
    // Position after the last `%`, and the text index it currently covers.
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        match p.get(pi) {
            Some('%') => {
                star = Some((pi + 1, si));
                pi += 1;
            }
            Some('_') => {
                si += 1;
                pi += 1;
            }
            Some(&c) if c == s[si] => {
                si += 1;
                pi += 1;
            }
            _ => match star {
                Some((star_pi, star_si)) => {
                    // Extend the last `%` by one character and retry.
                    star = Some((star_pi, star_si + 1));
                    pi = star_pi;
                    si = star_si + 1;
                }
                None => return false,
            },
        }
    }
    // Only trailing `%`s may remain unconsumed.
    while p.get(pi) == Some(&'%') {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableSchema};

    fn medical_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        kb.create_table(
            TableSchema::new("precautions")
                .column("prec_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("description", ColumnType::Text)
                .primary_key("prec_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )
        .unwrap();
        for (id, name) in [(1, "Aspirin"), (2, "Ibuprofen"), (3, "Tazarotene")] {
            kb.insert("drug", vec![Value::Int(id), Value::text(name)]).unwrap();
        }
        for (id, drug, desc) in [
            (1, 1, "avoid with bleeding disorders"),
            (2, 2, "take with food"),
            (3, 2, "avoid in third trimester"),
        ] {
            kb.insert("precautions", vec![Value::Int(id), Value::Int(drug), Value::text(desc)])
                .unwrap();
        }
        kb
    }

    #[test]
    fn join_with_filter_matches_paper_template() {
        let kb = medical_kb();
        let rs = kb
            .query(
                "SELECT precautions.description FROM precautions \
                 INNER JOIN drug ON precautions.drug_id = drug.drug_id \
                 WHERE drug.name = 'Ibuprofen'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.columns, vec!["description"]);
    }

    #[test]
    fn aliases_work() {
        let kb = medical_kb();
        let rs = kb
            .query(
                "SELECT p.description FROM precautions p \
                 INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Aspirin'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn unqualified_unambiguous_columns_resolve() {
        let kb = medical_kb();
        let rs = kb
            .query(
                "SELECT description FROM precautions \
                 INNER JOIN drug ON precautions.drug_id = drug.drug_id WHERE name = 'Aspirin'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn ambiguous_column_errors() {
        let kb = medical_kb();
        let err = kb
            .query(
                "SELECT drug_id FROM precautions \
                 INNER JOIN drug ON precautions.drug_id = drug.drug_id",
            )
            .unwrap_err();
        assert!(matches!(err, KbError::Semantic(_)));
    }

    #[test]
    fn self_join_requires_aliases() {
        let kb = medical_kb();
        let err = kb
            .query("SELECT * FROM drug INNER JOIN drug ON drug.drug_id = drug.drug_id")
            .unwrap_err();
        assert!(matches!(err, KbError::Semantic(_)));
        let rs = kb
            .query("SELECT a.name FROM drug a INNER JOIN drug b ON a.drug_id = b.drug_id")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn self_join_projection_qualifies_colliding_columns() {
        // Regression: `SELECT a.name, b.name` used to drop both
        // qualifiers, yielding two indistinguishable `name` columns.
        let kb = medical_kb();
        let rs = kb
            .query("SELECT a.name, b.name FROM drug a INNER JOIN drug b ON a.drug_id = b.drug_id")
            .unwrap();
        assert_eq!(rs.columns, vec!["a.name", "b.name"]);
        assert_eq!(rs.rows.len(), 3);
        // A name projected from a single binding stays unqualified even
        // when another (differently named) column rides along.
        let rs = kb
            .query(
                "SELECT d.name, p.description FROM drug d \
                 INNER JOIN precautions p ON d.drug_id = p.drug_id",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["name", "description"]);
    }

    #[test]
    fn bound_plan_is_reusable_across_inserts() {
        let mut kb = medical_kb();
        let stmt = super::super::parser::parse("SELECT name FROM drug WHERE drug_id >= 2").unwrap();
        let plan = bind(&kb, &stmt).unwrap();
        assert_eq!(execute_bound(&kb, &plan).unwrap().rows.len(), 2);
        kb.insert("drug", vec![Value::Int(9), Value::text("Warfarin")]).unwrap();
        // The plan depends only on schema, so it sees the new row.
        assert_eq!(execute_bound(&kb, &plan).unwrap().rows.len(), 3);
    }

    #[test]
    fn prepare_binds_without_executing() {
        let kb = medical_kb();
        let plan = kb
            .prepare(
                "SELECT a.name, b.name FROM drug a \
                 INNER JOIN drug b ON a.drug_id = b.drug_id WHERE a.name = 'Aspirin'",
            )
            .unwrap();
        assert_eq!(plan.columns(), ["a.name", "b.name"]);
        assert_eq!(plan.tables().collect::<Vec<_>>(), ["drug", "drug"]);
        assert_eq!(plan.predicate_count(), 1);
        assert!(kb.prepare("SELECT nope FROM drug").is_err());
        assert!(kb.prepare("SELECT name FROM nowhere").is_err());
    }

    #[test]
    fn star_projection_qualifies_when_joined() {
        let kb = medical_kb();
        let rs = kb.query("SELECT * FROM drug").unwrap();
        assert_eq!(rs.columns, vec!["drug_id", "name"]);
        let rs = kb
            .query("SELECT * FROM precautions p INNER JOIN drug d ON p.drug_id = d.drug_id")
            .unwrap();
        assert!(rs.columns.contains(&"p.description".to_string()));
        assert!(rs.columns.contains(&"d.name".to_string()));
    }

    #[test]
    fn distinct_order_limit() {
        let kb = medical_kb();
        let rs = kb
            .query(
                "SELECT DISTINCT d.name FROM drug d \
                 INNER JOIN precautions p ON d.drug_id = p.drug_id \
                 ORDER BY name DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::text("Ibuprofen")]]);
    }

    #[test]
    fn order_by_must_be_projected() {
        let kb = medical_kb();
        assert!(kb.query("SELECT name FROM drug ORDER BY drug_id").is_err());
        assert!(kb.query("SELECT name FROM drug ORDER BY name").is_ok());
    }

    #[test]
    fn like_and_contains() {
        let kb = medical_kb();
        let rs = kb.query("SELECT name FROM drug WHERE name LIKE 'Asp%'").unwrap();
        assert_eq!(rs.rows.len(), 1);
        let rs = kb.query("SELECT name FROM drug WHERE name CONTAINS 'IBU'").unwrap();
        assert_eq!(rs.rows.len(), 1, "CONTAINS is case-insensitive");
        let rs = kb.query("SELECT name FROM drug WHERE name LIKE '%e_'").unwrap();
        // "Tazarotene" ends 'n','e' — pattern %e_ matches ...e + one char.
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut kb = medical_kb();
        kb.insert("precautions", vec![Value::Int(4), Value::Null, Value::text("orphan")]).unwrap();
        let rs = kb
            .query(
                "SELECT p.description FROM precautions p \
                 INNER JOIN drug d ON p.drug_id = d.drug_id",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3, "NULL drug_id must not join");
    }

    #[test]
    fn comparison_operators_on_ints() {
        let kb = medical_kb();
        let rs = kb.query("SELECT name FROM drug WHERE drug_id >= 2").unwrap();
        assert_eq!(rs.rows.len(), 2);
        let rs = kb.query("SELECT name FROM drug WHERE drug_id != 2").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn empty_result_is_ok() {
        let kb = medical_kb();
        let rs = kb.query("SELECT name FROM drug WHERE name = 'Nothing'").unwrap();
        assert!(rs.rows.is_empty());
        assert_eq!(rs.single_column().unwrap().len(), 0);
    }

    #[test]
    fn like_match_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("ac", "a%c"));
        assert!(!like_match("ab", "a%c"));
        assert!(like_match("a%b", "a%b")); // literal interpretation via %
        assert!(like_match("abc", "%%%"));
        assert!(like_match("abc", "%b%"));
        assert!(like_match("abc", "_%_"));
        assert!(!like_match("ab", "_%_%_"));
        assert!(like_match("aaab", "%a_b"));
        assert!(!like_match("abc", "%d%"));
    }

    #[test]
    fn like_match_pathological_pattern_terminates_fast() {
        // The old recursive matcher was exponential on this shape: every
        // `%` forked over all remaining suffixes. 2^40+ steps — hours.
        // The two-pointer matcher is bounded by |s|·|pattern| steps.
        let s = "a".repeat(400);
        let pattern = format!("{}b", "%a".repeat(20));
        let start = std::time::Instant::now();
        assert!(!like_match(&s, &pattern));
        assert!(like_match(&format!("{s}b"), &pattern));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "pathological LIKE took {:?} — backtracking blow-up regressed",
            start.elapsed()
        );
    }

    #[test]
    fn like_match_agrees_with_recursive_reference() {
        // Reference implementation: the old (correct but exponential)
        // recursive matcher, safe at these tiny sizes.
        fn reference(s: &[char], p: &[char]) -> bool {
            match p.first() {
                None => s.is_empty(),
                Some('%') => (0..=s.len()).any(|k| reference(&s[k..], &p[1..])),
                Some('_') => !s.is_empty() && reference(&s[1..], &p[1..]),
                Some(c) => s.first() == Some(c) && reference(&s[1..], &p[1..]),
            }
        }
        let alphabet = ['a', 'b', '%', '_'];
        // Exhaustive over all strings/patterns of length ≤ 3 over {a,b}
        // × patterns of length ≤ 3 over {a,b,%,_}: 2^0..3 × 4^0..3.
        let mut strings = vec![String::new()];
        for _ in 0..3 {
            let next: Vec<String> = strings
                .iter()
                .flat_map(|s| ['a', 'b'].iter().map(move |c| format!("{s}{c}")))
                .collect();
            strings.extend(next);
        }
        let mut patterns = vec![String::new()];
        for _ in 0..3 {
            let next: Vec<String> = patterns
                .iter()
                .flat_map(|p| alphabet.iter().map(move |c| format!("{p}{c}")))
                .collect();
            patterns.extend(next);
        }
        for s in &strings {
            let sc: Vec<char> = s.chars().collect();
            for p in &patterns {
                let pc: Vec<char> = p.chars().collect();
                assert_eq!(
                    like_match(s, p),
                    reference(&sc, &pc),
                    "disagreement on s={s:?} pattern={p:?}"
                );
            }
        }
    }

    #[test]
    fn like_prefix_extraction() {
        assert_eq!(like_prefix("Cardio%"), "Cardio");
        assert_eq!(like_prefix("Car_io%"), "Car");
        assert_eq!(like_prefix("%zol"), "");
        assert_eq!(like_prefix("exact"), "exact");
    }

    #[test]
    fn planner_picks_index_paths_and_results_match_scan() {
        let mut kb = medical_kb();
        for i in 4..200 {
            kb.insert("drug", vec![Value::Int(i), Value::text(format!("Generic{i}"))]).unwrap();
        }
        let mut scan = kb.clone();
        scan.set_index_enabled(false);
        assert!(
            !kb.prepare("SELECT name FROM drug WHERE drug_id = 2").unwrap().uses_index(),
            "no index yet — plan must scan"
        );
        kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        kb.create_index("drug", "name", IndexKind::Ordered).unwrap();
        scan.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        scan.create_index("drug", "name", IndexKind::Ordered).unwrap();

        let eq = "SELECT name FROM drug WHERE drug_id = 2";
        let plan = kb.prepare(eq).unwrap();
        assert!(plan.uses_index());
        assert_eq!(plan.access_label(), "index_eq");
        assert_eq!(kb.query(eq).unwrap(), scan.query(eq).unwrap());
        assert_eq!(kb.query(eq).unwrap().rows, vec![vec![Value::text("Ibuprofen")]]);

        let like = "SELECT name FROM drug WHERE name LIKE 'Asp%'";
        let plan = kb.prepare(like).unwrap();
        assert_eq!(plan.access_label(), "index_prefix");
        assert_eq!(kb.query(like).unwrap(), scan.query(like).unwrap());
        assert_eq!(kb.query(like).unwrap().rows.len(), 1);

        // An unanchored pattern has no literal prefix: scan.
        let plan = kb.prepare("SELECT name FROM drug WHERE name LIKE '%zol'").unwrap();
        assert_eq!(plan.access_label(), "scan");

        // Joins probe the persistent hash index; results stay identical.
        let join = "SELECT p.description FROM precautions p \
                    INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.drug_id <= 5";
        assert_eq!(kb.query(join).unwrap(), scan.query(join).unwrap());
    }

    #[test]
    fn equality_via_ordered_index_when_no_hash_exists() {
        let mut kb = medical_kb();
        for i in 4..100 {
            kb.insert("drug", vec![Value::Int(i), Value::text(format!("Generic{i}"))]).unwrap();
        }
        kb.create_index("drug", "name", IndexKind::Ordered).unwrap();
        let sql = "SELECT drug_id FROM drug WHERE name = 'Aspirin'";
        let plan = kb.prepare(sql).unwrap();
        assert_eq!(plan.access_label(), "index_eq", "ordered index serves equality too");
        assert_eq!(kb.query(sql).unwrap().rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn disabled_indexes_fall_back_to_scan_with_identical_results() {
        let mut kb = medical_kb();
        kb.create_index("drug", "drug_id", IndexKind::Hash).unwrap();
        let sql = "SELECT name FROM drug WHERE drug_id = 3";
        let with_index = kb.query(sql).unwrap();
        kb.set_index_enabled(false);
        assert_eq!(kb.query(sql).unwrap(), with_index);
        kb.set_index_enabled(true);
        assert_eq!(kb.query(sql).unwrap(), with_index);
    }

    #[test]
    fn low_selectivity_index_loses_to_scan() {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("flag", ColumnType::Int)
                .primary_key("id"),
        )
        .unwrap();
        for i in 0..50 {
            kb.insert("t", vec![Value::Int(i), Value::Int(i % 2)]).unwrap();
        }
        kb.create_index("t", "flag", IndexKind::Hash).unwrap();
        // Two distinct values over 50 rows: estimated 25 ≥ rows/2, so the
        // planner keeps the scan.
        let plan = kb.prepare("SELECT id FROM t WHERE flag = 1").unwrap();
        assert_eq!(plan.access_label(), "scan");
        assert_eq!(kb.query("SELECT id FROM t WHERE flag = 1").unwrap().rows.len(), 25);
    }

    #[test]
    fn contains_lowered_matches_unicode_and_ascii() {
        assert!(contains_lowered("Ibuprofen", "ibu"));
        assert!(contains_lowered("IBUPROFEN", "profen"));
        assert!(!contains_lowered("Aspirin", "ibu"));
        assert!(contains_lowered("anything", ""));
        assert!(!contains_lowered("ab", "abc"));
        // Non-ASCII falls back to full lowercasing.
        assert!(contains_lowered("Fiebersaft für Kinder", "für"));
        assert!(contains_lowered("ÜBERDOSIS", "überdosis"));
    }
}
