//! A hand-written SQL subset sufficient for the queries the conversation
//! system generates (paper §4.4, Fig. 9):
//!
//! ```sql
//! SELECT [DISTINCT] col [, col ...]
//! FROM table [alias]
//! [INNER JOIN table [alias] ON col = col ...]
//! [WHERE col OP literal [AND ...]]
//! [ORDER BY col [ASC|DESC]]
//! [LIMIT n]
//! ```
//!
//! with `OP ∈ {=, !=, <>, <, <=, >, >=, LIKE, CONTAINS}`. `LIKE` supports
//! `%` wildcards; `CONTAINS` is case-insensitive substring match (used for
//! partial-entity disambiguation, paper §6.1).

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{ColumnRef, CompareOp, Predicate, Select, TableRef};
