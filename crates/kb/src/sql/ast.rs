//! Abstract syntax tree for the SQL subset.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A possibly-qualified column reference (`name` or `qualifier.name`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name or alias, when qualified.
    pub qualifier: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn new(qualifier: Option<&str>, column: &str) -> Self {
        ColumnRef { qualifier: qualifier.map(str::to_string), column: column.to_string() }
    }

    pub fn bare(column: &str) -> Self {
        ColumnRef { qualifier: None, column: column.to_string() }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// A table in the FROM/JOIN clause with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressable by (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Comparison operators in WHERE predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// SQL LIKE with `%` wildcards (case-sensitive).
    Like,
    /// Case-insensitive substring containment.
    Contains,
}

/// A single predicate: column vs literal, or column vs column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    ColumnLiteral { column: ColumnRef, op: CompareOp, literal: Value },
    ColumnColumn { left: ColumnRef, op: CompareOp, right: ColumnRef },
}

/// One INNER JOIN clause with an equality condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Join {
    pub table: TableRef,
    pub left: ColumnRef,
    pub right: ColumnRef,
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderBy {
    pub column: ColumnRef,
    pub descending: bool,
}

/// A projected item: a column or `*`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectItem {
    Star,
    Column(ColumnRef),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    /// Conjunction of predicates (empty = no WHERE clause).
    pub predicates: Vec<Predicate>,
    pub order_by: Option<OrderBy>,
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("name").to_string(), "name");
        assert_eq!(ColumnRef::new(Some("d"), "name").to_string(), "d.name");
    }

    #[test]
    fn table_binding_prefers_alias() {
        let t = TableRef { table: "drug".into(), alias: Some("d".into()) };
        assert_eq!(t.binding(), "d");
        let t = TableRef { table: "drug".into(), alias: None };
        assert_eq!(t.binding(), "drug");
    }
}
