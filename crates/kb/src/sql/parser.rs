//! Recursive-descent parser for the SQL subset.

use crate::store::KbError;
use crate::value::Value;

use super::ast::{ColumnRef, CompareOp, Join, OrderBy, Predicate, Select, SelectItem, TableRef};
use super::lexer::{lex, Spanned, Token};

/// Parses one SELECT statement.
pub fn parse(input: &str) -> Result<Select, KbError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.select()?;
    if p.pos != p.tokens.len() {
        return Err(KbError::Parse(format!(
            "trailing input after statement at byte {}",
            p.tokens[p.pos].offset
        )));
    }
    Ok(select)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the given keyword
    /// (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), KbError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(KbError::Parse(format!("expected `{kw}` {}", self.here())))
        }
    }

    fn here(&self) -> String {
        match self.tokens.get(self.pos) {
            Some(t) => format!("at byte {}", t.offset),
            None => "at end of input".to_string(),
        }
    }

    fn ident(&mut self) -> Result<String, KbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => {
                Err(KbError::Parse(format!("expected identifier, got {other:?} {}", self.here())))
            }
        }
    }

    fn select(&mut self) -> Result<Select, KbError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.next();
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("INNER");
            if inner {
                self.expect_keyword("JOIN")?;
            } else if !self.eat_keyword("JOIN") {
                break;
            }
            let table = self.table_ref()?;
            self.expect_keyword("ON")?;
            let left = self.column_ref()?;
            match self.next() {
                Some(Token::Eq) => {}
                other => {
                    return Err(KbError::Parse(format!(
                        "JOIN conditions must use `=`, got {other:?}"
                    )))
                }
            }
            let right = self.column_ref()?;
            joins.push(Join { table, left, right });
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let column = self.column_ref()?;
            let descending = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            Some(OrderBy { column, descending })
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(KbError::Parse(format!(
                        "LIMIT expects a non-negative integer, got {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Select { distinct, items, from, joins, predicates, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, KbError> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.next();
            return Ok(SelectItem::Star);
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn table_ref(&mut self) -> Result<TableRef, KbError> {
        let table = self.ident()?;
        // An alias is any identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                let a = s.clone();
                self.pos += 1;
                Some(a)
            }
            _ => None,
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, KbError> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            self.next();
            let column = self.ident()?;
            Ok(ColumnRef { qualifier: Some(first), column })
        } else {
            Ok(ColumnRef { qualifier: None, column: first })
        }
    }

    fn predicate(&mut self) -> Result<Predicate, KbError> {
        let column = self.column_ref()?;
        let op = match self.next() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("LIKE") => CompareOp::Like,
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("CONTAINS") => CompareOp::Contains,
            other => {
                return Err(KbError::Parse(format!("expected comparison operator, got {other:?}")))
            }
        };
        match self.peek() {
            Some(Token::StringLit(_)) | Some(Token::Int(_)) | Some(Token::Float(_)) => {
                let literal = match self.next() {
                    Some(Token::StringLit(s)) => Value::Text(s),
                    Some(Token::Int(i)) => Value::Int(i),
                    Some(Token::Float(f)) => Value::float(f)
                        .ok_or_else(|| KbError::Parse("non-finite float literal".to_string()))?,
                    _ => unreachable!("peeked literal"),
                };
                Ok(Predicate::ColumnLiteral { column, op, literal })
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => {
                self.next();
                Ok(Predicate::ColumnLiteral { column, op, literal: Value::Bool(true) })
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => {
                self.next();
                Ok(Predicate::ColumnLiteral { column, op, literal: Value::Bool(false) })
            }
            Some(Token::Ident(_)) => {
                let right = self.column_ref()?;
                Ok(Predicate::ColumnColumn { left: column, op, right })
            }
            other => Err(KbError::Parse(format!(
                "expected literal or column after operator, got {other:?}"
            ))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "INNER", "JOIN", "ON", "WHERE", "AND", "ORDER", "BY", "LIMIT", "ASC", "DESC", "FROM",
        "SELECT", "DISTINCT",
    ];
    KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure9_query() {
        // The template query of Fig. 9 (modulo whitespace).
        let q = "SELECT oPrecautions.description \
                 FROM precautions oPrecautions \
                 INNER JOIN drug oDrug ON oPrecautions.drug_id = oDrug.drug_id \
                 WHERE oDrug.name = 'Ibuprofen'";
        let s = parse(q).unwrap();
        assert!(!s.distinct);
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from.binding(), "oPrecautions");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.predicates.len(), 1);
    }

    #[test]
    fn parses_star_and_distinct() {
        let s = parse("SELECT DISTINCT * FROM t").unwrap();
        assert!(s.distinct);
        assert_eq!(s.items, vec![SelectItem::Star]);
    }

    #[test]
    fn parses_multi_join_where_order_limit() {
        let q = "SELECT a.x, b.y FROM a INNER JOIN b ON a.id = b.a_id \
                 INNER JOIN c ON b.id = c.b_id \
                 WHERE a.x > 3 AND b.y != 'z' ORDER BY a.x DESC LIMIT 10";
        let s = parse(q).unwrap();
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.predicates.len(), 2);
        assert!(s.order_by.as_ref().unwrap().descending);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select x from t where x = 1 order by x limit 2").is_ok());
    }

    #[test]
    fn join_keyword_without_inner() {
        let s = parse("SELECT x FROM a JOIN b ON a.i = b.i").unwrap();
        assert_eq!(s.joins.len(), 1);
    }

    #[test]
    fn like_and_contains_operators() {
        let s = parse("SELECT x FROM t WHERE x LIKE '%asp%' AND x CONTAINS 'cal'").unwrap();
        assert!(matches!(s.predicates[0], Predicate::ColumnLiteral { op: CompareOp::Like, .. }));
        assert!(matches!(
            s.predicates[1],
            Predicate::ColumnLiteral { op: CompareOp::Contains, .. }
        ));
    }

    #[test]
    fn column_column_predicate() {
        let s = parse("SELECT x FROM t WHERE t.a = t.b").unwrap();
        assert!(matches!(s.predicates[0], Predicate::ColumnColumn { .. }));
    }

    #[test]
    fn boolean_literals() {
        let s = parse("SELECT x FROM t WHERE flag = TRUE").unwrap();
        assert!(matches!(
            &s.predicates[0],
            Predicate::ColumnLiteral { literal: Value::Bool(true), .. }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELEC x FROM t").is_err());
        assert!(parse("SELECT x FROM t WHERE").is_err());
        assert!(parse("SELECT x FROM t LIMIT -1").is_err());
        assert!(parse("SELECT x FROM t extra garbage here now").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT x FROM a JOIN b ON a.i > b.i").is_err());
    }

    #[test]
    fn alias_vs_keyword_disambiguation() {
        // `WHERE` must not be eaten as an alias.
        let s = parse("SELECT x FROM t WHERE x = 1").unwrap();
        assert!(s.from.alias.is_none());
        let s = parse("SELECT x FROM t u WHERE x = 1").unwrap();
        assert_eq!(s.from.alias.as_deref(), Some("u"));
    }
}
