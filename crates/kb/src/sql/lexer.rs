//! Tokenizer for the SQL subset.

use crate::store::KbError;

/// A lexical token with its source position (byte offset) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Single-quoted string literal with `''` escapes resolved.
    StringLit(String),
    Int(i64),
    Float(f64),
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A token paired with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Tokenizes a SQL string.
pub fn lex(input: &str) -> Result<Vec<Spanned>, KbError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Spanned { token: Token::Comma, offset: start });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned { token: Token::Dot, offset: start });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned { token: Token::Star, offset: start });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned { token: Token::LParen, offset: start });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, offset: start });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Eq, offset: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Ne, offset: start });
                    i += 2;
                } else {
                    return Err(KbError::Parse(format!("unexpected `!` at byte {start}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Spanned { token: Token::Le, offset: start });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Spanned { token: Token::Ne, offset: start });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned { token: Token::Lt, offset: start });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Ge, offset: start });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Gt, offset: start });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(KbError::Parse(format!(
                                "unterminated string literal starting at byte {start}"
                            )))
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance over one UTF-8 character.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Spanned { token: Token::StringLit(s), offset: start });
            }
            '0'..='9' | '-' => {
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() {
                    match bytes[j] as char {
                        '0'..='9' => j += 1,
                        '.' if !is_float
                            && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) =>
                        {
                            is_float = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[i..j];
                if text == "-" {
                    return Err(KbError::Parse(format!("unexpected `-` at byte {start}")));
                }
                let token = if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|e| KbError::Parse(format!("bad float `{text}`: {e}")))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|e| KbError::Parse(format!("bad integer `{text}`: {e}")))?,
                    )
                };
                tokens.push(Spanned { token, offset: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let c = bytes[j] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens
                    .push(Spanned { token: Token::Ident(input[i..j].to_string()), offset: start });
                i = j;
            }
            other => {
                return Err(KbError::Parse(format!(
                    "unexpected character `{other}` at byte {start}"
                )))
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_select_tokens() {
        assert_eq!(
            toks("SELECT a.b, c FROM t"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Comma,
                Token::Ident("c".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks("'O''Neil'"), vec![Token::StringLit("O'Neil".into())]);
        assert_eq!(toks("''"), vec![Token::StringLit(String::new())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("-7"), vec![Token::Int(-7)]);
        assert_eq!(toks("2.5"), vec![Token::Float(2.5)]);
        // A trailing dot is a Dot token, not part of the number.
        assert_eq!(toks("2."), vec![Token::Int(2), Token::Dot]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != <> < <= > >="),
            vec![Token::Eq, Token::Ne, Token::Ne, Token::Lt, Token::Le, Token::Gt, Token::Ge]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'naïve — ☃'"), vec![Token::StringLit("naïve — ☃".into())]);
    }

    #[test]
    fn bad_characters_error() {
        assert!(lex("SELECT #").is_err());
        assert!(lex("a ! b").is_err());
    }
}
