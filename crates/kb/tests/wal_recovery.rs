//! Torn-file recovery properties (DESIGN.md §16), for both durability
//! formats. The WAL side: a log cut at *any* byte offset recovers to a
//! prefix-consistent KB — exactly the records whose frames survived in
//! full, never a panic, never a half-applied record. The deterministic
//! test walks every byte offset of the final record's frame; the
//! property test cuts at arbitrary offsets over arbitrary insert
//! batches so cut points interact with varied frame sizes. The snapshot
//! side is the opposite contract: snapshot commits are atomic (tmp +
//! rename), so a binary snapshot cut at *any* byte offset is hard
//! `Corrupt` — never a silent partial load. A property test also pins
//! the two snapshot formats to each other: JSON and binary images of
//! the same KB load back observationally identical (rows, generations,
//! index policy, planner access labels).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::snapshot::{read_snapshot, write_snapshot, write_snapshot_json};
use obcs_kb::{DurabilityError, IndexKind, KnowledgeBase, Value, Wal, WalRecord};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("obcs_walrec_{}_{tag}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Writes `records` to a fresh WAL at `path`, returning the file length
/// after each record (frame boundaries, starting with the 16-byte v2
/// header: magic + epoch).
fn write_wal(path: &Path, records: &[WalRecord]) -> Vec<u64> {
    let (mut wal, replay) = Wal::open(path).expect("fresh wal");
    assert!(replay.records.is_empty());
    let mut boundaries = vec![16u64];
    for r in records {
        wal.append(r).expect("append");
        wal.sync().expect("sync");
        boundaries.push(std::fs::metadata(path).expect("stat").len());
    }
    boundaries
}

/// KB states after applying each prefix of `records`: `oracles[k]` is
/// the serialized KB (plus generation stamps) after records `0..k`.
fn prefix_oracles(records: &[WalRecord]) -> Vec<(String, u64, u64)> {
    let mut kb = KnowledgeBase::new();
    let mut oracles = vec![(kb.to_json(), kb.generation(), kb.schema_generation())];
    for r in records {
        r.apply(&mut kb).expect("oracle apply");
        oracles.push((kb.to_json(), kb.generation(), kb.schema_generation()));
    }
    oracles
}

fn sample_records(inserts: &[(i64, String)]) -> Vec<WalRecord> {
    let mut records = vec![WalRecord::CreateTable(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id"),
    )];
    for (id, name) in inserts {
        records.push(WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(*id), Value::text(name.clone())],
        });
    }
    records.push(WalRecord::CreateIndex {
        table: "drug".to_string(),
        column: "name".to_string(),
        kind: IndexKind::Ordered,
    });
    records.push(WalRecord::AutoIndex);
    records
}

/// Recovery from a WAL whose file was cut to `cut` bytes must yield the
/// KB of the longest record prefix whose frames fit within the cut.
fn assert_prefix_consistent(
    dir: &Path,
    full: &[u8],
    cut: usize,
    boundaries: &[u64],
    oracles: &[(String, u64, u64)],
) {
    let wal_path = dir.join(format!("cut_{cut}.wal"));
    std::fs::write(&wal_path, &full[..cut]).expect("write cut file");
    let (kb, report) = KnowledgeBase::recover_from(dir.join("no_snapshot"), &wal_path)
        .expect("torn tails recover, never error");
    let survivors = boundaries.iter().filter(|b| **b <= cut as u64).count() - 1;
    let (json, generation, schema_generation) = &oracles[survivors];
    assert_eq!(report.wal_records, survivors, "cut at {cut}");
    assert_eq!(report.wal_truncated_bytes, cut as u64 - boundaries[survivors], "cut at {cut}");
    assert_eq!(&kb.to_json(), json, "cut at {cut}: state must match the {survivors}-record prefix");
    assert_eq!(kb.generation(), *generation, "cut at {cut}");
    assert_eq!(kb.schema_generation(), *schema_generation, "cut at {cut}");
    // The truncation is persisted: a second recovery replays the same
    // prefix cleanly with nothing left to truncate.
    let (_, again) =
        KnowledgeBase::recover_from(dir.join("no_snapshot"), &wal_path).expect("second recovery");
    assert_eq!(again.wal_records, survivors);
    assert_eq!(again.wal_truncated_bytes, 0, "first recovery already truncated the tail");
    std::fs::remove_file(&wal_path).ok();
}

#[test]
fn every_byte_offset_of_the_final_record_recovers_the_prefix() {
    let dir = temp_dir("final_record");
    let inserts: Vec<(i64, String)> =
        (0..8).map(|i| (i, format!("Drug{i} with a name long enough to matter"))).collect();
    let records = sample_records(&inserts);
    let wal_path = dir.join("full.wal");
    let boundaries = write_wal(&wal_path, &records);
    let oracles = prefix_oracles(&records);
    let full = std::fs::read(&wal_path).expect("read full wal");
    assert_eq!(*boundaries.last().expect("boundaries") as usize, full.len());

    // Every cut inside the final record's frame — from "frame absent
    // entirely" through "one byte short of intact" — plus the intact
    // file itself.
    let last_start = boundaries[boundaries.len() - 2] as usize;
    for cut in last_start..=full.len() {
        assert_prefix_consistent(&dir, &full, cut, &boundaries, &oracles);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cuts_inside_the_magic_header_are_corruption_not_panics() {
    let dir = temp_dir("header");
    let records = sample_records(&[(1, "Aspirin".to_string())]);
    let wal_path = dir.join("full.wal");
    write_wal(&wal_path, &records);
    let full = std::fs::read(&wal_path).expect("read");
    for cut in 1..8 {
        let path = dir.join(format!("hdr_{cut}.wal"));
        std::fs::write(&path, &full[..cut]).expect("write");
        let err = KnowledgeBase::recover_from(dir.join("no_snapshot"), &path)
            .expect_err("a torn magic header is not a valid log");
        assert!(matches!(err, DurabilityError::Corrupt(_)), "cut at {cut}: {err}");
    }
    // Cuts inside the v2 *epoch* field are a crash mid-reset, not
    // corruption: the truncate-first reset ordering guarantees nothing
    // follows a torn header, so the file reopens as a fresh epoch-0 log.
    for cut in 8..16 {
        let path = dir.join(format!("epoch_{cut}.wal"));
        std::fs::write(&path, &full[..cut]).expect("write");
        let (kb, report) = KnowledgeBase::recover_from(dir.join("no_snapshot"), &path)
            .expect("a torn epoch field repairs to a fresh log");
        assert_eq!(report.wal_records, 0, "cut at {cut}");
        assert_eq!(report.epoch, 0, "cut at {cut}");
        assert_eq!(report.wal_truncated_bytes, cut as u64 - 8, "cut at {cut}");
        assert_eq!(kb.to_json(), KnowledgeBase::new().to_json());
    }
    // Cut to zero bytes: an empty file is a *fresh* log, not corruption.
    let path = dir.join("hdr_0.wal");
    std::fs::write(&path, b"").expect("write");
    let (kb, report) =
        KnowledgeBase::recover_from(dir.join("no_snapshot"), &path).expect("empty file is fresh");
    assert_eq!(report.wal_records, 0);
    assert_eq!(kb.to_json(), KnowledgeBase::new().to_json());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Arbitrary cut offsets over arbitrary insert batches: recovery is
    /// always the exact longest intact prefix.
    #[test]
    fn any_cut_offset_recovers_a_consistent_prefix(
        ids in proptest::collection::vec((0i64..64, 0u8..8), 1..12),
        cut_seed in 0usize..1_000_000,
    ) {
        let dir = temp_dir("prop");
        // Distinct PKs so every generated record applies cleanly; the
        // suffix varies payload length so frames differ in size.
        let mut seen = std::collections::HashSet::new();
        let inserts: Vec<(i64, String)> = ids
            .iter()
            .filter(|(id, _)| seen.insert(*id))
            .map(|(id, pad)| (*id, format!("Drug{id}{}", "x".repeat(*pad as usize * 7))))
            .collect();
        let records = sample_records(&inserts);
        let wal_path = dir.join("full.wal");
        let boundaries = write_wal(&wal_path, &records);
        let oracles = prefix_oracles(&records);
        let full = std::fs::read(&wal_path).expect("read full wal");
        // Any offset from "just the header" to "fully intact".
        let cut = 16 + cut_seed % (full.len() - 15);
        assert_prefix_consistent(&dir, &full, cut, &boundaries, &oracles);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Binary snapshot format: truncation is corruption, and the two formats
// are observationally equivalent.
// ---------------------------------------------------------------------

/// A KB with enough variety to exercise every value tag and the index
/// policy: two tables, an FK, mixed Int/Float/Null/Text values, huge
/// (beyond-2^53) keys, and both index kinds.
fn varied_kb(rows: &[(i64, u8, u8)]) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("weight", ColumnType::Float)
            .column("otc", ColumnType::Bool)
            .primary_key("drug_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("precautions")
            .column("prec_id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .primary_key("prec_id")
            .foreign_key("drug_id", "drug", "drug_id"),
    )
    .expect("schema");
    for (i, (id, pad, sel)) in rows.iter().enumerate() {
        let weight = match sel % 5 {
            0 => Value::Int(id % 4),
            1 => Value::float(*id as f64 + 0.5).expect("finite"),
            2 => Value::Null,
            3 => Value::Int((1i64 << 53) + id),
            _ => Value::float(-(*id as f64)).expect("finite"),
        };
        let otc = match sel % 3 {
            0 => Value::Bool(true),
            1 => Value::Bool(false),
            _ => Value::Null,
        };
        kb.insert(
            "drug",
            vec![
                Value::Int(*id),
                Value::text(format!("Drug{id}{}", "x".repeat(*pad as usize))),
                weight,
                otc,
            ],
        )
        .expect("distinct PKs");
        kb.insert(
            "precautions",
            vec![Value::Int(i as i64), Value::Int(*id), Value::text(format!("warning {id}"))],
        )
        .expect("FK holds");
    }
    kb.create_index("drug", "drug_id", IndexKind::Hash).expect("index");
    kb.create_index("drug", "name", IndexKind::Ordered).expect("index");
    kb.create_index("precautions", "drug_id", IndexKind::Hash).expect("index");
    kb
}

/// Queries whose planner access labels must survive any snapshot format
/// (point probe, LIKE prefix, FK join).
const LABEL_QUERIES: &[&str] = &[
    "SELECT name FROM drug WHERE drug_id = 3",
    "SELECT name FROM drug WHERE name LIKE 'Drug1%'",
    "SELECT p.description FROM precautions p \
     INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.drug_id = 2",
];

#[test]
fn every_byte_truncation_of_a_binary_snapshot_is_hard_corrupt() {
    let dir = temp_dir("snap_trunc");
    let rows: Vec<(i64, u8, u8)> = (0..12).map(|i| (i, (i % 5) as u8, (i % 7) as u8)).collect();
    let kb = varied_kb(&rows);
    let path = dir.join("kb.snapshot");
    write_snapshot(&kb, &path, 9).expect("write");
    let full = std::fs::read(&path).expect("read");
    assert!(full.len() > 500, "image is big enough for the walk to mean something");
    let cut_path = dir.join("cut.snapshot");
    // Snapshot commits are atomic, so *no* truncation is a valid file:
    // every cut — mid-magic, mid-epoch, mid-section-header, mid-payload,
    // one byte short of intact — must be a hard error, never a silent
    // partial load.
    for cut in 0..full.len() {
        std::fs::write(&cut_path, &full[..cut]).expect("write cut");
        let err = read_snapshot(&cut_path).expect_err("truncated snapshot must not load");
        assert!(matches!(err, DurabilityError::Corrupt(_)), "cut at {cut}: {err}");
    }
    // And the intact file still loads, proving the walk tested the real
    // image rather than some always-rejected garbage.
    std::fs::write(&cut_path, &full).expect("write intact");
    let (back, epoch) = read_snapshot(&cut_path).expect("intact file loads");
    assert_eq!(epoch, Some(9));
    assert_eq!(back.to_json(), kb.to_json());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// JSON and binary snapshots of the same KB are observationally
    /// identical after reload: same rows, same generation stamps, same
    /// index policy, same planner access labels.
    #[test]
    fn json_and_binary_snapshots_load_back_identical(
        ids in proptest::collection::vec((0i64..64, 0u8..9, 0u8..16), 1..24),
        epoch in 0u64..1000,
    ) {
        let dir = temp_dir("snap_prop");
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, u8, u8)> =
            ids.into_iter().filter(|(id, _, _)| seen.insert(*id)).collect();
        let kb = varied_kb(&rows);

        let json_path = dir.join("kb_json.snapshot");
        let bin_path = dir.join("kb_bin.snapshot");
        write_snapshot_json(&kb, &json_path).expect("json write");
        write_snapshot(&kb, &bin_path, epoch).expect("binary write");
        let (from_json, json_epoch) = read_snapshot(&json_path).expect("json read");
        let (from_bin, bin_epoch) = read_snapshot(&bin_path).expect("binary read");
        prop_assert_eq!(json_epoch, None, "the JSON format predates epochs");
        prop_assert_eq!(bin_epoch, Some(epoch));

        prop_assert_eq!(from_json.to_json(), from_bin.to_json());
        prop_assert_eq!(from_bin.to_json(), kb.to_json());
        prop_assert_eq!(from_json.generation(), from_bin.generation());
        prop_assert_eq!(from_bin.generation(), kb.generation());
        prop_assert_eq!(from_json.schema_generation(), from_bin.schema_generation());
        prop_assert_eq!(from_bin.schema_generation(), kb.schema_generation());
        prop_assert_eq!(from_json.index_count(), from_bin.index_count());
        prop_assert_eq!(from_bin.index_count(), kb.index_count());
        for sql in LABEL_QUERIES {
            let a = from_json.prepare(sql).expect("plan").access_label();
            let b = from_bin.prepare(sql).expect("plan").access_label();
            prop_assert_eq!(a, b, "access path diverged between formats for {}", sql);
            prop_assert_eq!(
                a, kb.prepare(sql).expect("plan").access_label(),
                "access path diverged from the original for {}", sql
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
