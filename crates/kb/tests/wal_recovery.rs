//! Torn-tail recovery properties (DESIGN.md §16): a WAL cut at *any*
//! byte offset recovers to a prefix-consistent KB — exactly the records
//! whose frames survived in full, never a panic, never a half-applied
//! record. The deterministic test walks every byte offset of the final
//! record's frame; the property test cuts at arbitrary offsets over
//! arbitrary insert batches so cut points interact with varied frame
//! sizes.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{DurabilityError, IndexKind, KnowledgeBase, Value, Wal, WalRecord};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("obcs_walrec_{}_{tag}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Writes `records` to a fresh WAL at `path`, returning the file length
/// after each record (frame boundaries, starting with the 8-byte magic).
fn write_wal(path: &Path, records: &[WalRecord]) -> Vec<u64> {
    let (mut wal, replay) = Wal::open(path).expect("fresh wal");
    assert!(replay.records.is_empty());
    let mut boundaries = vec![8u64];
    for r in records {
        wal.append(r).expect("append");
        wal.sync().expect("sync");
        boundaries.push(std::fs::metadata(path).expect("stat").len());
    }
    boundaries
}

/// KB states after applying each prefix of `records`: `oracles[k]` is
/// the serialized KB (plus generation stamps) after records `0..k`.
fn prefix_oracles(records: &[WalRecord]) -> Vec<(String, u64, u64)> {
    let mut kb = KnowledgeBase::new();
    let mut oracles = vec![(kb.to_json(), kb.generation(), kb.schema_generation())];
    for r in records {
        r.apply(&mut kb).expect("oracle apply");
        oracles.push((kb.to_json(), kb.generation(), kb.schema_generation()));
    }
    oracles
}

fn sample_records(inserts: &[(i64, String)]) -> Vec<WalRecord> {
    let mut records = vec![WalRecord::CreateTable(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id"),
    )];
    for (id, name) in inserts {
        records.push(WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(*id), Value::text(name.clone())],
        });
    }
    records.push(WalRecord::CreateIndex {
        table: "drug".to_string(),
        column: "name".to_string(),
        kind: IndexKind::Ordered,
    });
    records.push(WalRecord::AutoIndex);
    records
}

/// Recovery from a WAL whose file was cut to `cut` bytes must yield the
/// KB of the longest record prefix whose frames fit within the cut.
fn assert_prefix_consistent(
    dir: &Path,
    full: &[u8],
    cut: usize,
    boundaries: &[u64],
    oracles: &[(String, u64, u64)],
) {
    let wal_path = dir.join(format!("cut_{cut}.wal"));
    std::fs::write(&wal_path, &full[..cut]).expect("write cut file");
    let (kb, report) = KnowledgeBase::recover_from(dir.join("no_snapshot"), &wal_path)
        .expect("torn tails recover, never error");
    let survivors = boundaries.iter().filter(|b| **b <= cut as u64).count() - 1;
    let (json, generation, schema_generation) = &oracles[survivors];
    assert_eq!(report.wal_records, survivors, "cut at {cut}");
    assert_eq!(report.wal_truncated_bytes, cut as u64 - boundaries[survivors], "cut at {cut}");
    assert_eq!(&kb.to_json(), json, "cut at {cut}: state must match the {survivors}-record prefix");
    assert_eq!(kb.generation(), *generation, "cut at {cut}");
    assert_eq!(kb.schema_generation(), *schema_generation, "cut at {cut}");
    // The truncation is persisted: a second recovery replays the same
    // prefix cleanly with nothing left to truncate.
    let (_, again) =
        KnowledgeBase::recover_from(dir.join("no_snapshot"), &wal_path).expect("second recovery");
    assert_eq!(again.wal_records, survivors);
    assert_eq!(again.wal_truncated_bytes, 0, "first recovery already truncated the tail");
    std::fs::remove_file(&wal_path).ok();
}

#[test]
fn every_byte_offset_of_the_final_record_recovers_the_prefix() {
    let dir = temp_dir("final_record");
    let inserts: Vec<(i64, String)> =
        (0..8).map(|i| (i, format!("Drug{i} with a name long enough to matter"))).collect();
    let records = sample_records(&inserts);
    let wal_path = dir.join("full.wal");
    let boundaries = write_wal(&wal_path, &records);
    let oracles = prefix_oracles(&records);
    let full = std::fs::read(&wal_path).expect("read full wal");
    assert_eq!(*boundaries.last().expect("boundaries") as usize, full.len());

    // Every cut inside the final record's frame — from "frame absent
    // entirely" through "one byte short of intact" — plus the intact
    // file itself.
    let last_start = boundaries[boundaries.len() - 2] as usize;
    for cut in last_start..=full.len() {
        assert_prefix_consistent(&dir, &full, cut, &boundaries, &oracles);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cuts_inside_the_magic_header_are_corruption_not_panics() {
    let dir = temp_dir("header");
    let records = sample_records(&[(1, "Aspirin".to_string())]);
    let wal_path = dir.join("full.wal");
    write_wal(&wal_path, &records);
    let full = std::fs::read(&wal_path).expect("read");
    for cut in 1..8 {
        let path = dir.join(format!("hdr_{cut}.wal"));
        std::fs::write(&path, &full[..cut]).expect("write");
        let err = KnowledgeBase::recover_from(dir.join("no_snapshot"), &path)
            .expect_err("a torn magic header is not a valid log");
        assert!(matches!(err, DurabilityError::Corrupt(_)), "cut at {cut}: {err}");
    }
    // Cut to zero bytes: an empty file is a *fresh* log, not corruption.
    let path = dir.join("hdr_0.wal");
    std::fs::write(&path, b"").expect("write");
    let (kb, report) =
        KnowledgeBase::recover_from(dir.join("no_snapshot"), &path).expect("empty file is fresh");
    assert_eq!(report.wal_records, 0);
    assert_eq!(kb.to_json(), KnowledgeBase::new().to_json());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Arbitrary cut offsets over arbitrary insert batches: recovery is
    /// always the exact longest intact prefix.
    #[test]
    fn any_cut_offset_recovers_a_consistent_prefix(
        ids in proptest::collection::vec((0i64..64, 0u8..8), 1..12),
        cut_seed in 0usize..1_000_000,
    ) {
        let dir = temp_dir("prop");
        // Distinct PKs so every generated record applies cleanly; the
        // suffix varies payload length so frames differ in size.
        let mut seen = std::collections::HashSet::new();
        let inserts: Vec<(i64, String)> = ids
            .iter()
            .filter(|(id, _)| seen.insert(*id))
            .map(|(id, pad)| (*id, format!("Drug{id}{}", "x".repeat(*pad as usize * 7))))
            .collect();
        let records = sample_records(&inserts);
        let wal_path = dir.join("full.wal");
        let boundaries = write_wal(&wal_path, &records);
        let oracles = prefix_oracles(&records);
        let full = std::fs::read(&wal_path).expect("read full wal");
        // Any offset from "just the magic" to "fully intact".
        let cut = 8 + cut_seed % (full.len() - 7);
        assert_prefix_consistent(&dir, &full, cut, &boundaries, &oracles);
        std::fs::remove_dir_all(&dir).ok();
    }
}
