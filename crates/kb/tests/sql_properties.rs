//! Property-based tests for the SQL subset engine: the parser must never
//! panic, quoting must round-trip, and execution must agree with a naive
//! reference evaluation.

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::sql::parser::parse;
use obcs_kb::value::sql_quote;
use obcs_kb::{KnowledgeBase, Value};
use proptest::prelude::*;

proptest! {
    /// Arbitrary input never panics the lexer/parser — it either parses or
    /// returns a KbError.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Any parseable statement re-parses after being regenerated from its
    /// token stream... (we don't pretty-print, so instead check a weaker
    /// invariant: parsing is deterministic).
    #[test]
    fn parsing_is_deterministic(input in "[ -~]{0,60}") {
        let a = parse(&input).is_ok();
        let b = parse(&input).is_ok();
        prop_assert_eq!(a, b);
    }

    /// Quoted text literals survive the full insert → filter → project
    /// cycle for arbitrary content including quotes and unicode.
    #[test]
    fn text_round_trip(value in "\\PC{0,24}") {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("x", ColumnType::Text)
                .primary_key("id"),
        ).expect("schema");
        kb.insert("t", vec![Value::Int(0), Value::text(value.clone())]).expect("insert");
        let rs = kb
            .query(&format!("SELECT x FROM t WHERE x = {}", sql_quote(&value)))
            .expect("query parses");
        prop_assert_eq!(rs.rows.len(), 1);
    }

    /// Integer comparison operators agree with Rust's.
    #[test]
    fn int_comparisons_agree(values in proptest::collection::vec(-50i64..50, 1..20), pivot in -50i64..50) {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("v", ColumnType::Int)
                .primary_key("id"),
        ).expect("schema");
        for (i, v) in values.iter().enumerate() {
            kb.insert("t", vec![Value::Int(i as i64), Value::Int(*v)]).expect("insert");
        }
        for (op, f) in [
            ("<", Box::new(|v: i64| v < pivot) as Box<dyn Fn(i64) -> bool>),
            ("<=", Box::new(|v: i64| v <= pivot)),
            (">", Box::new(|v: i64| v > pivot)),
            (">=", Box::new(|v: i64| v >= pivot)),
            ("=", Box::new(|v: i64| v == pivot)),
            ("!=", Box::new(|v: i64| v != pivot)),
        ] {
            let rs = kb
                .query(&format!("SELECT v FROM t WHERE v {op} {pivot}"))
                .expect("parses");
            let expected = values.iter().filter(|&&v| f(v)).count();
            prop_assert_eq!(rs.rows.len(), expected, "operator {}", op);
        }
    }

    /// LIMIT never returns more rows than asked, and ORDER BY produces a
    /// sorted projection.
    #[test]
    fn order_and_limit(values in proptest::collection::vec(0i64..100, 0..30), limit in 0usize..10) {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("v", ColumnType::Int)
                .primary_key("id"),
        ).expect("schema");
        for (i, v) in values.iter().enumerate() {
            kb.insert("t", vec![Value::Int(i as i64), Value::Int(*v)]).expect("insert");
        }
        let rs = kb
            .query(&format!("SELECT v FROM t ORDER BY v ASC LIMIT {limit}"))
            .expect("parses");
        prop_assert!(rs.rows.len() <= limit);
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.truncate(limit);
        prop_assert_eq!(got, sorted);
    }

    /// A hash join returns exactly the rows a nested-loop reference
    /// produces.
    #[test]
    fn join_agrees_with_reference(
        left in proptest::collection::vec(0i64..8, 0..12),
        right in proptest::collection::vec(0i64..8, 0..12),
    ) {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("l")
                .column("id", ColumnType::Int)
                .column("k", ColumnType::Int)
                .primary_key("id"),
        ).expect("schema");
        kb.create_table(
            TableSchema::new("r")
                .column("id", ColumnType::Int)
                .column("k", ColumnType::Int)
                .primary_key("id"),
        ).expect("schema");
        for (i, k) in left.iter().enumerate() {
            kb.insert("l", vec![Value::Int(i as i64), Value::Int(*k)]).expect("insert");
        }
        for (i, k) in right.iter().enumerate() {
            kb.insert("r", vec![Value::Int(i as i64), Value::Int(*k)]).expect("insert");
        }
        let rs = kb
            .query("SELECT l.k FROM l INNER JOIN r ON l.k = r.k")
            .expect("parses");
        let expected: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count())
            .sum();
        prop_assert_eq!(rs.rows.len(), expected);
    }
}

#[test]
fn distinct_removes_exact_duplicates_only() {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("t")
            .column("id", ColumnType::Int)
            .column("a", ColumnType::Text)
            .column("b", ColumnType::Text)
            .primary_key("id"),
    )
    .expect("schema");
    for (i, (a, b)) in [("x", "1"), ("x", "1"), ("x", "2")].iter().enumerate() {
        kb.insert("t", vec![Value::Int(i as i64), Value::text(*a), Value::text(*b)])
            .expect("insert");
    }
    let rs = kb.query("SELECT DISTINCT a, b FROM t").expect("parses");
    assert_eq!(rs.rows.len(), 2);
    let rs = kb.query("SELECT DISTINCT a FROM t").expect("parses");
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn limit_zero_is_empty() {
    let mut kb = KnowledgeBase::new();
    kb.create_table(TableSchema::new("t").column("id", ColumnType::Int).primary_key("id"))
        .expect("schema");
    kb.insert("t", vec![Value::Int(1)]).expect("insert");
    let rs = kb.query("SELECT id FROM t LIMIT 0").expect("parses");
    assert!(rs.rows.is_empty());
}
