//! Recovery of a *committed* JSON-era durability directory
//! (`tests/data/legacy_durability/`): an `OBCSSNP1` JSON snapshot next
//! to an `OBCSWAL1` (pre-epoch) WAL, exactly what a server built before
//! the binary format and the epoch scheme leaves on disk. The fixture
//! is checked into the repository so format drift that would strand
//! real directories fails CI, not a user's restart.
//!
//! Regenerate with
//! `cargo test -p obcs-kb --test legacy_fixture -- --ignored` after a
//! *deliberate* envelope change, and commit the result.

use std::path::PathBuf;

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::snapshot::write_snapshot_json;
use obcs_kb::wal::{crc32, WAL_MAGIC};
use obcs_kb::{IndexKind, KnowledgeBase, Value, WalRecord};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/legacy_durability")
}

/// The KB the fixture snapshot holds, and the WAL tail appended after
/// it — deterministic so the committed bytes are reproducible.
fn fixture_state() -> (KnowledgeBase, Vec<WalRecord>) {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id"),
    )
    .expect("schema");
    for (id, name) in [(1, "Aspirin"), (2, "Ibuprofen"), (3, "Naproxen")] {
        kb.insert("drug", vec![Value::Int(id), Value::text(name)]).expect("insert");
    }
    kb.create_index("drug", "name", IndexKind::Ordered).expect("index");
    let tail = vec![
        WalRecord::Insert {
            table: "drug".to_string(),
            row: vec![Value::Int(4), Value::text("Ketoprofen")],
        },
        WalRecord::CreateIndex {
            table: "drug".to_string(),
            column: "drug_id".to_string(),
            kind: IndexKind::Hash,
        },
    ];
    (kb, tail)
}

/// Serialize `records` as an `OBCSWAL1` log: the 8-byte legacy magic
/// (no epoch field) followed by ordinary checksummed frames.
fn v1_wal_bytes(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = WAL_MAGIC.to_vec();
    for r in records {
        let payload = serde_json::to_string(r).expect("record json").into_bytes();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    bytes
}

#[test]
#[ignore = "writes tests/data/legacy_durability/; run only to regenerate the committed fixture"]
fn regenerate_legacy_fixture() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).expect("fixture dir");
    let (kb, tail) = fixture_state();
    write_snapshot_json(&kb, &dir.join("kb.snapshot")).expect("snapshot");
    std::fs::write(dir.join("kb.wal"), v1_wal_bytes(&tail)).expect("wal");
}

#[test]
fn committed_json_era_directory_still_recovers() {
    // Recover from a copy: recovery may write (torn-tail truncation,
    // epoch realignment), and the committed fixture must stay pristine.
    let src = fixture_dir();
    assert!(
        src.join("kb.snapshot").exists() && src.join("kb.wal").exists(),
        "fixture missing — regenerate with `cargo test -p obcs-kb --test legacy_fixture -- --ignored`"
    );
    let work = std::env::temp_dir().join(format!("obcs_legacy_fixture_{}", std::process::id()));
    std::fs::create_dir_all(&work).expect("work dir");
    for f in ["kb.snapshot", "kb.wal"] {
        std::fs::copy(src.join(f), work.join(f)).expect("copy fixture");
    }

    let (mut oracle, tail) = fixture_state();
    for r in &tail {
        r.apply(&mut oracle).expect("oracle apply");
    }
    let (recovered, report) =
        KnowledgeBase::recover_from(work.join("kb.snapshot"), work.join("kb.wal"))
            .expect("a JSON-era directory must keep recovering");
    assert!(report.snapshot_loaded);
    assert_eq!(report.epoch, 0, "pre-epoch files recover at epoch 0");
    assert_eq!(report.wal_records, tail.len(), "the legacy WAL tail replays in full");
    assert_eq!(report.wal_truncated_bytes, 0);
    assert_eq!(report.wal_discarded_records, 0, "nothing is discarded on the legacy path");
    assert_eq!(recovered.to_json(), oracle.to_json());
    assert_eq!(recovered.generation(), oracle.generation());
    assert_eq!(recovered.schema_generation(), oracle.schema_generation());
    assert_eq!(recovered.index_count(), oracle.index_count());
    assert_eq!(recovered.table("drug").expect("table").len(), 4);
    std::fs::remove_dir_all(&work).ok();
}
