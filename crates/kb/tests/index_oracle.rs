//! Property-based equivalence of index-backed execution against a
//! scan-only oracle (DESIGN.md §14): over arbitrary interleavings of
//! inserts, queries, index creations, and index enable/disable toggles,
//! a KB answering through its secondary indexes (and its plan/result
//! caches) must return byte-identical results — including errors — to a
//! KB that never builds an index and executes with caching off. The
//! schema mixes an `Int` PK, a high-cardinality text column, and a
//! `Float` column that also admits `Int` values, so the dual-probe
//! (`Int`↔`Float` `sql_eq`) and saturation (≥ 2^53) paths are all
//! exercised mid-stream.

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{IndexKind, KnowledgeBase, Value};
use proptest::prelude::*;

fn fresh_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("weight", ColumnType::Float)
            .primary_key("drug_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("precautions")
            .column("prec_id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .primary_key("prec_id")
            .foreign_key("drug_id", "drug", "drug_id"),
    )
    .expect("schema");
    kb
}

/// Query shapes covering every index-eligible path: hash point lookup,
/// ordered LIKE-prefix, equality through an ordered text index, the
/// `Int`/`Float` dual probe both ways, a join over the FK hash index,
/// an unanchored LIKE (must stay a scan), a huge-magnitude equality
/// (the index must decline and scan), and error shapes.
const QUERIES: &[&str] = &[
    "SELECT name FROM drug WHERE drug_id = 5",
    "SELECT name FROM drug WHERE name LIKE 'Drug1%'",
    "SELECT name FROM drug WHERE name LIKE '%x2'",
    "SELECT drug_id FROM drug WHERE name = 'Drug3x1'",
    "SELECT name FROM drug WHERE weight = 2",
    "SELECT name FROM drug WHERE weight = 2.0",
    "SELECT name FROM drug WHERE weight = 2.5",
    "SELECT name FROM drug WHERE weight = 9007199254740997",
    "SELECT DISTINCT name FROM drug WHERE name LIKE 'D%' ORDER BY name DESC LIMIT 3",
    "SELECT p.description FROM precautions p \
     INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.drug_id = 2",
    "SELECT d.name, p.description FROM drug d \
     INNER JOIN precautions p ON d.drug_id = p.drug_id ORDER BY name ASC",
    "SELECT nope FROM drug",
];

/// The index targets the `CreateIndex` op draws from.
const INDEXES: &[(&str, &str, IndexKind)] = &[
    ("drug", "drug_id", IndexKind::Hash),
    ("drug", "name", IndexKind::Ordered),
    ("drug", "weight", IndexKind::Hash),
    ("drug", "weight", IndexKind::Ordered),
    ("precautions", "drug_id", IndexKind::Hash),
    ("precautions", "description", IndexKind::Ordered),
];

#[derive(Debug, Clone)]
enum Op {
    /// Insert a drug row; the selector picks the weight's type so the
    /// Float column holds a mix of `Int`, `Float`, NULL, and huge keys.
    InsertDrug(i64, u8, u8),
    /// Insert a precaution referencing drug `drug_id` (may violate FK).
    InsertPrecaution(i64, i64),
    Query(usize),
    CreateIndex(usize),
    /// Toggle index-backed execution on the indexed KB mid-stream.
    SetIndexes(bool),
}

fn weight_value(id: i64, sel: u8) -> Value {
    match sel % 5 {
        0 => Value::Int(id % 4),
        1 => Value::float((id % 4) as f64).expect("finite"),
        2 => Value::float(id as f64 + 0.5).expect("finite"),
        3 => Value::Null,
        // Beyond 2^53: saturates ordered indexes, declines hash probes.
        _ => Value::Int((1i64 << 53) + id),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..8, 0i64..24, 0i64..14, 0u8..8).prop_map(|(kind, id, drug, sel)| match kind {
        0 | 1 => Op::InsertDrug(id % 12, sel % 4, sel),
        2 => Op::InsertPrecaution(id, drug),
        3 => Op::CreateIndex(id as usize % INDEXES.len()),
        4 => Op::SetIndexes(sel % 2 == 0),
        _ => Op::Query(id as usize),
    })
}

fn apply_insert(kb: &mut KnowledgeBase, op: &Op) -> Result<(), obcs_kb::KbError> {
    match op {
        Op::InsertDrug(id, suffix, sel) => kb.insert(
            "drug",
            vec![
                Value::Int(*id),
                Value::text(format!("Drug{id}x{suffix}")),
                weight_value(*id, *sel),
            ],
        ),
        Op::InsertPrecaution(id, drug) => kb.insert(
            "precautions",
            vec![Value::Int(*id), Value::Int(*drug), Value::text(format!("precaution {id}"))],
        ),
        _ => unreachable!("only insert ops reach apply_insert"),
    }
}

proptest! {
    /// Indexed (and cached) execution is observationally identical to a
    /// scan-only, cache-free oracle over any interleaving of mutations,
    /// queries, index creations, and index toggles.
    #[test]
    fn indexed_queries_match_scan_only_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..50),
    ) {
        let mut indexed = fresh_kb();
        let mut oracle = fresh_kb();
        oracle.set_cache_enabled(false);
        oracle.set_index_enabled(false);
        prop_assert!(indexed.index_enabled());

        for op in &ops {
            match op {
                Op::Query(i) => {
                    let sql = QUERIES[i % QUERIES.len()];
                    let expected = oracle.query(sql);
                    // Twice: the second run exercises the cache-hit path
                    // on top of the index-backed plan.
                    prop_assert_eq!(&indexed.query(sql), &expected, "cold divergence on {}", sql);
                    prop_assert_eq!(&indexed.query(sql), &expected, "warm divergence on {}", sql);
                }
                Op::CreateIndex(i) => {
                    let (table, column, kind) = INDEXES[i % INDEXES.len()];
                    indexed.create_index(table, column, kind).expect("valid index target");
                }
                Op::SetIndexes(on) => indexed.set_index_enabled(*on),
                insert => {
                    let a = apply_insert(&mut indexed, insert);
                    let b = apply_insert(&mut oracle, insert);
                    prop_assert_eq!(a, b, "mutation outcomes diverged on {:?}", insert);
                }
            }
        }
        prop_assert_eq!(oracle.index_count(), 0, "the oracle must never index");
    }
}

/// Deterministic end-to-end check of the headline path: a fully indexed
/// KB agrees with its scan twin on every query shape above.
#[test]
fn auto_indexed_kb_matches_scan_twin_exhaustively() {
    let mut indexed = fresh_kb();
    for id in 0..40i64 {
        indexed
            .insert(
                "drug",
                vec![
                    Value::Int(id),
                    Value::text(format!("Drug{id}x{}", id % 3)),
                    weight_value(id, (id % 5) as u8),
                ],
            )
            .expect("insert");
    }
    for id in 0..60i64 {
        indexed
            .insert(
                "precautions",
                vec![Value::Int(id), Value::Int(id % 12), Value::text(format!("precaution {id}"))],
            )
            .expect("insert");
    }
    let mut scan = indexed.clone();
    scan.set_index_enabled(false);
    scan.set_cache_enabled(false);
    assert!(indexed.auto_index() > 0);
    for sql in QUERIES {
        assert_eq!(indexed.query(sql), scan.query(sql), "divergence on {sql}");
    }
}
