//! Store-level edge cases: error rendering, result-set helpers, and value
//! semantics the SQL engine relies on.

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::value::{sql_quote, FiniteF64};
use obcs_kb::{KbError, KnowledgeBase, ResultSet, Value};

fn kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("t")
            .column("id", ColumnType::Int)
            .column("x", ColumnType::Text)
            .column("f", ColumnType::Float)
            .primary_key("id"),
    )
    .expect("schema");
    kb.insert("t", vec![Value::Int(1), Value::text("a"), Value::float(1.5).expect("finite")])
        .expect("row");
    kb
}

#[test]
fn all_error_variants_render_readably() {
    let mut kb = kb();
    let errors: Vec<KbError> = vec![
        kb.create_table(TableSchema::new("t").column("x", ColumnType::Int)).unwrap_err(),
        kb.query("SELECT x FROM nope").unwrap_err(),
        kb.query("SELECT nope FROM t").unwrap_err(),
        kb.insert("t", vec![Value::Int(1)]).unwrap_err(),
        kb.insert("t", vec![Value::text("no"), Value::text("a"), Value::Null]).unwrap_err(),
        kb.insert("t", vec![Value::Int(1), Value::text("dup"), Value::Null]).unwrap_err(),
        kb.query("SELECT").unwrap_err(),
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(!msg.contains("Err("), "no debug formatting leaks: {msg}");
    }
}

#[test]
fn result_set_render_and_single_column() {
    let kb = kb();
    let rs = kb.query("SELECT id, x FROM t").expect("query");
    let rendered = rs.render();
    assert!(rendered.starts_with("id | x\n"));
    assert!(rendered.contains("1 | a"));
    assert!(rs.single_column().is_err(), "two columns");
    let one = kb.query("SELECT x FROM t").expect("query");
    assert_eq!(one.single_column().unwrap().len(), 1);
    // Manually constructed empty result set.
    let empty = ResultSet { columns: vec!["c".into()], rows: vec![] };
    assert_eq!(empty.render(), "c\n");
}

#[test]
fn float_columns_accept_ints_and_compare_numerically() {
    let mut kb = kb();
    kb.insert("t", vec![Value::Int(2), Value::text("b"), Value::Int(2)]).expect("widening");
    let rs = kb.query("SELECT x FROM t WHERE f >= 1.5").expect("query");
    assert_eq!(rs.rows.len(), 2);
    let rs = kb.query("SELECT x FROM t WHERE f = 2").expect("query");
    assert_eq!(rs.rows.len(), 1);
}

#[test]
#[should_panic(expected = "finite")]
fn finite_f64_rejects_nan() {
    let _ = FiniteF64::new(f64::NAN);
}

#[test]
fn sql_quote_handles_pathological_values() {
    let kb = kb();
    for v in ["", "'", "''", "a'b'c", "%;--", "\" OR 1=1"] {
        let sql = format!("SELECT x FROM t WHERE x = {}", sql_quote(v));
        // Never a parse error, never an injection (the engine has no DML).
        let rs = kb.query(&sql).expect("quoted literal parses");
        assert!(rs.rows.len() <= 1);
    }
}

#[test]
fn json_round_trip_preserves_float_bits() {
    let kb = kb();
    let back = KnowledgeBase::from_json(&kb.to_json()).expect("round trip");
    assert_eq!(back.table("t").unwrap().rows[0][2], Value::float(1.5).unwrap());
}
