//! Property-based equivalence of the cached query path against a
//! cache-disabled oracle (DESIGN.md §12): over arbitrary sequences of
//! inserts interleaved with queries, a KB answering through its
//! plan/result caches must return byte-identical results — including
//! errors — to a KB with caching off. Each query runs twice against the
//! cached KB so the second execution exercises the hit path.

use obcs_cache::{CacheConfig, GenCache};
use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use proptest::prelude::*;

/// The fixed drug/precautions schema every generated sequence runs over.
fn fresh_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("precautions")
            .column("prec_id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .primary_key("prec_id")
            .foreign_key("drug_id", "drug", "drug_id"),
    )
    .expect("schema");
    kb
}

/// The query shapes the sequences draw from: single-table scans with
/// every comparison family, joins, a self-join with colliding projected
/// names, DISTINCT/ORDER BY/LIMIT, and LIKE/CONTAINS.
const QUERIES: &[&str] = &[
    "SELECT name FROM drug",
    "SELECT name FROM drug WHERE drug_id >= 3",
    "SELECT name FROM drug WHERE name LIKE 'D%'",
    "SELECT name FROM drug WHERE name CONTAINS 'rug'",
    "SELECT DISTINCT name FROM drug ORDER BY name DESC LIMIT 4",
    "SELECT p.description FROM precautions p \
     INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.drug_id <= 5",
    "SELECT a.name, b.name FROM drug a INNER JOIN drug b ON a.drug_id = b.drug_id",
    "SELECT d.name, p.description FROM drug d \
     INNER JOIN precautions p ON d.drug_id = p.drug_id ORDER BY name ASC",
    // Error shapes: unknown column / ambiguous column — never cached,
    // and the oracle must agree on the error value too.
    "SELECT nope FROM drug",
    "SELECT drug_id FROM precautions INNER JOIN drug ON precautions.drug_id = drug.drug_id",
];

/// One step of a generated sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a drug row (id, name-suffix); duplicates of an existing PK
    /// are themselves part of the property (both KBs must reject alike).
    InsertDrug(i64, u8),
    /// Insert a precaution referencing drug `drug_id` (may violate FK).
    InsertPrecaution(i64, i64),
    /// Run `QUERIES[i % len]`.
    Query(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest shim has no `prop_oneof!`; draw a kind tag
    // plus every operand and map to the variant.
    (0usize..4, 0i64..24, 0i64..14, 0u8..4).prop_map(|(kind, id, drug, suffix)| match kind {
        0 => Op::InsertDrug(id % 12, suffix),
        1 => Op::InsertPrecaution(id, drug),
        _ => Op::Query(id as usize),
    })
}

fn apply_insert(kb: &mut KnowledgeBase, op: &Op) -> Result<(), obcs_kb::KbError> {
    match op {
        Op::InsertDrug(id, suffix) => {
            kb.insert("drug", vec![Value::Int(*id), Value::text(format!("Drug{id}x{suffix}"))])
        }
        Op::InsertPrecaution(id, drug) => kb.insert(
            "precautions",
            vec![Value::Int(*id), Value::Int(*drug), Value::text(format!("precaution {id}"))],
        ),
        Op::Query(_) => unreachable!("queries are not inserts"),
    }
}

proptest! {
    /// Cached execution is observationally identical to the oracle over
    /// any interleaving of mutations and queries.
    #[test]
    fn cached_queries_match_cache_disabled_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut cached = fresh_kb();
        let mut oracle = fresh_kb();
        oracle.set_cache_enabled(false);
        prop_assert!(cached.cache_enabled());

        for op in &ops {
            match op {
                Op::Query(i) => {
                    let sql = QUERIES[i % QUERIES.len()];
                    let expected = oracle.query(sql);
                    // Twice: first may fill the caches, second must hit.
                    prop_assert_eq!(&cached.query(sql), &expected, "cold divergence on {}", sql);
                    prop_assert_eq!(&cached.query(sql), &expected, "warm divergence on {}", sql);
                }
                insert => {
                    let a = apply_insert(&mut cached, insert);
                    let b = apply_insert(&mut oracle, insert);
                    prop_assert_eq!(a, b, "mutation outcomes diverged on {:?}", insert);
                }
            }
        }
        // The interleavings above must actually have exercised the cache.
        let stats = cached.cache_stats();
        prop_assert_eq!(oracle.cache_stats().result.lookups(), 0);
        prop_assert!(
            ops.iter().all(|o| !matches!(o, Op::Query(_)))
                || stats.result.hits + stats.plan.hits > 0,
            "sequences with queries must produce cache hits: {:?}",
            stats
        );
    }
}

/// A JSON reload must keep generation stamps sound for a `GenCache`
/// that outlives the reload (DESIGN.md §16). Before the durable
/// envelope, `from_json` restarted the counters at zero, so a cache
/// holding entries stamped by the pre-reload KB could collide with the
/// reloaded KB's re-used generation numbers and serve stale results.
#[test]
fn gen_cache_stamps_stay_sound_across_kb_reload() {
    let sql = "SELECT name FROM drug WHERE drug_id = 1";
    let mut kb = fresh_kb();
    for i in 0..5 {
        kb.insert("drug", vec![Value::Int(i), Value::text(format!("Drug{i}"))]).expect("insert");
    }

    // An external result cache, stamped with the live KB's generation —
    // exactly how the serving layer memoises replies.
    let mut cache: GenCache<String> = GenCache::new(CacheConfig::entries(16));
    let reply = format!("{:?}", kb.query(sql).expect("query").rows);
    cache.put(sql, kb.generation(), reply.clone(), reply.len());

    // Restart: serialize, reload. The entry was computed from exactly
    // this data, and the restored generation proves it — a hit.
    let mut kb2 = KnowledgeBase::from_json(&kb.to_json()).expect("reload");
    assert_eq!(kb2.generation(), kb.generation(), "data generation survives reload");
    assert_eq!(kb2.schema_generation(), kb.schema_generation());
    assert_eq!(cache.get(sql, kb2.generation()), Some(reply), "still-valid entry still hits");

    // A post-reload mutation advances past every stamp the cache holds;
    // the stale entry is treated as absent, never served.
    kb2.insert("drug", vec![Value::Int(1000), Value::text("New")]).expect("insert");
    assert!(kb2.generation() > kb.generation(), "reloaded KB advances, never re-treads stamps");
    assert_eq!(cache.get(sql, kb2.generation()), None, "stale entry is dropped, not served");
    assert_eq!(cache.stats().invalidations, 1);
}
