//! Per-intent user-utterance generators.
//!
//! The surface templates here intentionally differ from the bootstrapper's
//! training frames (`obcs-core::training`): the simulated users phrase
//! requests the way the paper's clinicians did, so classifier evaluation
//! against this traffic measures generalisation to unseen phrasings.

use obcs_kb::KnowledgeBase;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Instance-value pools sampled by the generators.
#[derive(Debug, Clone)]
pub struct ValuePools {
    pub drugs: Vec<String>,
    pub brands: Vec<String>,
    pub conditions: Vec<String>,
    pub ages: Vec<String>,
    /// `(drug, condition)` pairs that actually appear in the `treats`
    /// bridge — dosage/treatment requests sample these so the KB usually
    /// has an answer.
    pub treatment_pairs: Vec<(String, String)>,
}

impl ValuePools {
    /// Extracts the pools from the MDX knowledge base.
    pub fn from_kb(kb: &KnowledgeBase) -> Self {
        let texts = |rs: obcs_kb::ResultSet| -> Vec<String> {
            rs.rows.iter().map(|r| r[0].to_string()).collect()
        };
        let drugs = texts(kb.query("SELECT name FROM drug").expect("drug table"));
        let brands = texts(kb.query("SELECT brand FROM drug").expect("drug table"));
        let conditions = texts(kb.query("SELECT name FROM condition").expect("condition table"));
        let ages = vec!["adult".to_string(), "pediatric".to_string()];
        let pairs = kb
            .query(
                "SELECT g.name, c.name FROM treats t \
                 INNER JOIN drug g ON t.drug_id = g.drug_id \
                 INNER JOIN condition c ON t.condition_id = c.condition_id",
            )
            .expect("treats join");
        let treatment_pairs =
            pairs.rows.iter().map(|r| (r[0].to_string(), r[1].to_string())).collect();
        ValuePools { drugs, brands, conditions, ages, treatment_pairs }
    }
}

/// Surface templates per MDX intent name. `{drug}`, `{drug2}`, `{brand}`,
/// `{condition}`, `{age}` are substituted with pool values.
pub const TEMPLATES: &[(&str, &[&str])] = &[
    (
        "Drug Dosage for Condition",
        &[
            "what dose of {drug} for {condition}",
            "{drug} dosing for {condition}",
            "how much {drug} for {condition} in {age} patients",
            "dose of {drug} to treat {condition}",
            "recommended {drug} dose for {age} {condition}",
            "dosage {drug} {condition}",
            "give me the dosage for {drug} for {condition}",
        ],
    ),
    (
        "Administration of Drug",
        &[
            "how do i give {drug}",
            "how should {drug} be administered",
            "administration of {drug}",
            "how to take {drug}",
            "instructions for giving {drug}",
            "best way to administer {drug}",
        ],
    ),
    (
        "IV Compatibility of Drug",
        &[
            "iv compatibility for {drug}",
            "is {drug} compatible with normal saline",
            "can i run {drug} in the same iv line",
            "y-site compatibility {drug}",
            "{drug} iv compat",
            "iv compatibility of {drug} with d5w",
        ],
    ),
    (
        "Drugs That Treat Condition",
        &[
            "show me drugs that treat {condition}",
            "what treats {condition}",
            "medications for {condition}",
            "what can i give for {condition} in {age} patients",
            "treatment options for {condition}",
            "which drugs work for {condition}",
        ],
    ),
    (
        "Uses of Drug",
        &[
            "what is {drug} used for",
            "uses of {drug}",
            "why take {drug}",
            "indications for {drug}",
            "what does {drug} do",
            "labeled uses of {drug}",
        ],
    ),
    (
        "Adverse Effects of Drug",
        &[
            "side effects of {drug}",
            "adverse effects of {drug}",
            "what are the side effects of {drug}",
            "does {drug} cause problems",
            "negative reactions to {drug}",
            "{drug} adverse effects",
        ],
    ),
    (
        "Drug-Drug Interactions",
        &[
            "drug interactions for {drug}",
            "does {drug} interact with {drug2}",
            "can i combine {drug} and {drug2}",
            "{drug} drug interactions",
            "what interacts with {drug}",
            "what are the drug interactions for {drug}",
        ],
    ),
    ("DRUG_GENERAL", &["{drug}", "{drug}?", "{brand}", "{drug} please"]),
    (
        "Dose Adjustments for Drug",
        &[
            "dose adjustment for {drug}",
            "renal dosing for {drug}",
            "do i need to adjust {drug} in kidney disease",
            "dose reduction for {drug}",
            "dosing modification {drug}",
            "hepatic dose adjustment for {drug}",
        ],
    ),
    (
        "Regulatory Status for Drug",
        &[
            "regulatory status for {drug}",
            "is {drug} a controlled substance",
            "what schedule is {drug}",
            "is {drug} over the counter",
            "regulatory standing of {drug}",
        ],
    ),
    (
        "Pharmacokinetics",
        &[
            "pharmacokinetics of {drug}",
            "pk of {drug}",
            "half life of {drug}",
            "how is {drug} metabolized",
            "kinetics of {drug}",
        ],
    ),
    (
        "Precautions of Drug",
        &[
            "precautions for {drug}",
            "is {drug} safe to give",
            "cautions with {drug}",
            "precautions for {drug} in pregnancy",
            "show me the precautions for {drug}",
        ],
    ),
    (
        "Risks of Drug",
        &[
            "risks of {drug}",
            "contraindications for {drug}",
            "black box warning for {drug}",
            "is there a boxed warning on {drug}",
            "show me the risks associated with {drug}",
        ],
    ),
    (
        "Toxicology of Drug",
        &[
            "overdose of {drug}",
            "{drug} toxicity",
            "what happens with too much {drug}",
            "poisoning with {drug}",
            "toxicology of {drug}",
        ],
    ),
    (
        "Monitoring of Drug",
        &[
            "what should i monitor with {drug}",
            "labs for {drug}",
            "monitoring parameters for {drug}",
            "what labs to follow on {drug}",
        ],
    ),
    (
        "Mechanism of Action of Drug",
        &[
            "how does {drug} work",
            "mechanism of action of {drug}",
            "moa of {drug}",
            "pharmacology of {drug}",
        ],
    ),
    (
        "Dosages of Drug",
        &["dosage for {drug}", "dosing of {drug}", "how much {drug} should i give", "{drug} dose"],
    ),
    (
        "Conditions Treated by Drug",
        &[
            "what conditions are treated by {drug}",
            "what does {drug} treat",
            "which diseases does {drug} treat",
            "what is treated by {drug}",
        ],
    ),
    (
        "Drugs That May Cause Condition",
        &[
            "what drugs may cause {condition}",
            "which medications cause {condition}",
            "drugs that can cause {condition}",
        ],
    ),
    (
        "Conditions May Be Caused By Drug",
        &[
            "what conditions may be caused by {drug}",
            "what can {drug} cause",
            "conditions caused by {drug}",
        ],
    ),
    (
        "Drugs and Dosage for Condition",
        &[
            "give me the drugs and their dosage that treat {condition}",
            "drugs and dosing for {condition}",
            "show me drugs with dosage for {condition}",
        ],
    ),
    (
        "Drug Toxicology for Condition",
        &[
            "toxicology of {drug} for {condition}",
            "give me the toxicology for {drug} that treats {condition}",
        ],
    ),
    (
        "Drugs and Toxicology for Condition",
        &[
            "drugs and toxicology for {condition}",
            "give me the drugs and their toxicology for {condition}",
        ],
    ),
    // Conversation management.
    ("Greeting", &["hello there", "hi", "good day", "hey", "hello"]),
    ("Capability Check", &["what can you do", "what can i ask", "what do you know"]),
    ("Help Request", &["help", "help me out", "how does this work"]),
    ("Appreciation", &["thank you!", "thanks so much", "thanks!", "thanks"]),
    ("Acknowledgement", &["ok", "okay", "got it"]),
    ("Affirmation", &["yes", "yes please", "yeah"]),
    ("Disconfirmation", &["no", "no thanks", "nope"]),
    ("Repeat Request", &["what did you say", "say that again", "repeat that"]),
    (
        "Definition Request",
        &[
            "what do you mean by effective",
            "what does contraindication mean",
            "define black box warning",
        ],
    ),
    ("Paraphrase Request", &["what do you mean", "i don't understand"]),
    ("Abort", &["never mind", "cancel", "forget it"]),
    ("Closing", &["goodbye", "bye now", "bye"]),
    ("Chitchat", &["how are you", "who are you", "are you a robot"]),
];

/// Generates one utterance for an intent; `None` if the intent has no
/// templates.
pub fn generate(intent_name: &str, pools: &ValuePools, rng: &mut ChaCha8Rng) -> Option<String> {
    let (_, templates) = TEMPLATES.iter().find(|(n, _)| *n == intent_name)?;
    let template = templates[rng.gen_range(0..templates.len())];
    Some(fill(template, pools, rng))
}

/// Substitutes placeholders with pool values. Dosage/treatment templates
/// containing both `{drug}` and `{condition}` draw a linked pair.
pub fn fill(template: &str, pools: &ValuePools, rng: &mut ChaCha8Rng) -> String {
    let pick = |v: &[String], rng: &mut ChaCha8Rng| -> String {
        if v.is_empty() {
            "unknown".to_string()
        } else {
            v[rng.gen_range(0..v.len())].clone()
        }
    };
    let (drug, condition) = if template.contains("{drug}") && template.contains("{condition}") {
        let (d, c) = if pools.treatment_pairs.is_empty() {
            (pick(&pools.drugs, rng), pick(&pools.conditions, rng))
        } else {
            pools.treatment_pairs[rng.gen_range(0..pools.treatment_pairs.len())].clone()
        };
        (d, c)
    } else {
        (pick(&pools.drugs, rng), pick(&pools.conditions, rng))
    };
    template
        .replace("{drug2}", &pick(&pools.drugs, rng))
        .replace("{drug}", &drug)
        .replace("{brand}", &pick(&pools.brands, rng))
        .replace("{condition}", &condition)
        .replace("{age}", &pick(&pools.ages, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pools() -> ValuePools {
        ValuePools {
            drugs: vec!["Aspirin".into(), "Tazarotene".into()],
            brands: vec!["Bayer".into()],
            conditions: vec!["Fever".into(), "Psoriasis".into()],
            ages: vec!["adult".into(), "pediatric".into()],
            treatment_pairs: vec![("Tazarotene".into(), "Psoriasis".into())],
        }
    }

    #[test]
    fn all_36_intents_have_templates() {
        assert_eq!(TEMPLATES.len(), 36);
        for (_, t) in TEMPLATES {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn placeholders_are_substituted() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for (intent, _) in TEMPLATES {
            let u = generate(intent, &pools(), &mut rng).unwrap();
            assert!(!u.contains('{'), "unfilled placeholder in `{u}` for {intent}");
        }
    }

    #[test]
    fn linked_pairs_used_for_dosage() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let u = generate("Drug Dosage for Condition", &pools(), &mut rng).unwrap();
            if u.contains("Tazarotene") || u.contains("Psoriasis") {
                // linked pair: if one appears, templates with both use the
                // pair (not a random mismatch like Tazarotene+Fever).
                assert!(!(u.contains("Tazarotene") && u.contains("Fever")), "{u}");
            }
        }
    }

    #[test]
    fn unknown_intent_yields_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(generate("No Such Intent", &pools(), &mut rng).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(
            generate("Uses of Drug", &pools(), &mut a),
            generate("Uses of Drug", &pools(), &mut b)
        );
    }
}
