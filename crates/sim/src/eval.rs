//! The §7 evaluation statistics: Table 5 (usage + per-intent F1), Figure
//! 11 (success rate per intent from user feedback), Figure 12 (SME-judged
//! 10% sample), and the summary scalars.

use obcs_agent::Feedback;
use obcs_classifier::metrics::{evaluate, Report};
use obcs_core::ConversationSpace;
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::Ontology;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::noise;
use crate::traffic::{SimOutcome, INTENT_MIX};
use crate::utterance::{generate, ValuePools};

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    pub intent: String,
    /// Share of traffic (0..1).
    pub usage: f64,
    pub f1: f64,
}

/// Classifier evaluation: trains the NLU on the bootstrapped training set
/// and tests against simulated user phrasings whose intent distribution
/// mirrors real usage (the paper's §7.1 protocol). Returns the full
/// report plus the Table 5 rows for the top-10 intents by usage.
pub fn classifier_evaluation(
    space: &ConversationSpace,
    onto: &Ontology,
    kb: &KnowledgeBase,
    mapping: &OntologyMapping,
    outcome: &SimOutcome,
    test_per_intent_base: usize,
    seed: u64,
) -> (Report, Vec<Table5Row>) {
    let nlu = obcs_agent::nlu::Nlu::from_space(space, onto, kb, mapping);
    let pools = ValuePools::from_kb(kb);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total_weight: f64 = INTENT_MIX.iter().map(|&(_, w)| w).sum();
    let mut gold = Vec::new();
    let mut predicted = Vec::new();
    for (intent, weight) in INTENT_MIX {
        // Test-set size mirrors the usage distribution (paper §7.1), with
        // a floor so rare intents are still measured.
        let n = ((weight / total_weight) * (test_per_intent_base as f64 * 36.0)).ceil() as usize;
        let n = n.max(6);
        for _ in 0..n {
            let mut text = generate(intent, &pools, &mut rng).expect("all intents have templates");
            if rng.gen_bool(0.05) {
                text = noise::misspell(&text, &mut rng);
            }
            let pred = nlu
                .detect_intent(&text)
                .and_then(|(id, _)| space.intent(id))
                .map(|i| i.name.clone())
                .unwrap_or_default();
            gold.push(intent.to_string());
            predicted.push(pred);
        }
    }
    let report = evaluate(&gold, &predicted);

    // Usage share per intent from the simulated traffic.
    let usage_of = |name: &str| -> f64 {
        if outcome.records.is_empty() {
            return 0.0;
        }
        outcome.records.iter().filter(|r| r.expected_intent.as_deref() == Some(name)).count() as f64
            / outcome.records.len() as f64
    };
    let mut rows: Vec<Table5Row> = INTENT_MIX
        .iter()
        .map(|&(name, _)| Table5Row {
            intent: name.to_string(),
            usage: usage_of(name),
            f1: report.class(name).map(|m| m.f1).unwrap_or(0.0),
        })
        .collect();
    rows.sort_by(|a, b| b.usage.partial_cmp(&a.usage).expect("finite"));
    rows.truncate(10);
    (report, rows)
}

/// One bar of Figures 11/12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessRow {
    pub intent: String,
    pub interactions: usize,
    pub negative: usize,
    pub success_rate: f64,
}

/// Figure 11: success rate per intent from user feedback (Equation 1),
/// top-`k` intents by interaction count, plus the overall success rate.
pub fn fig11(outcome: &SimOutcome, k: usize) -> (Vec<SuccessRow>, f64) {
    let rows = success_rows(outcome, k, |r| r.feedback == Some(Feedback::ThumbsDown));
    (rows, outcome.success_rate())
}

/// Figure 12: a seeded ~`sample_fraction` sample of the traffic is judged
/// by SMEs (ground truth); returns the per-intent rows, the SME success
/// rate on the sample, and the user-feedback success rate on the same
/// sample (the paper reports 90.8% vs 97.9%).
pub fn fig12(
    outcome: &SimOutcome,
    sample_fraction: f64,
    k: usize,
    seed: u64,
) -> (Vec<SuccessRow>, f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..outcome.records.len()).collect();
    indices.shuffle(&mut rng);
    let n = ((outcome.records.len() as f64) * sample_fraction).round() as usize;
    indices.truncate(n.max(1));
    let sample =
        SimOutcome { records: indices.into_iter().map(|i| outcome.records[i].clone()).collect() };
    let rows = success_rows(&sample, k, |r| !r.correct);
    let sme_rate = sample.accuracy();
    let user_rate = sample.success_rate();
    (rows, sme_rate, user_rate)
}

fn success_rows(
    outcome: &SimOutcome,
    k: usize,
    is_negative: impl Fn(&crate::traffic::SimRecord) -> bool,
) -> Vec<SuccessRow> {
    let mut names: Vec<&str> =
        outcome.records.iter().filter_map(|r| r.detected_intent.as_deref()).collect();
    names.sort_unstable();
    names.dedup();
    let mut rows: Vec<SuccessRow> = names
        .into_iter()
        .map(|name| {
            let of_intent: Vec<&crate::traffic::SimRecord> = outcome
                .records
                .iter()
                .filter(|r| r.detected_intent.as_deref() == Some(name))
                .collect();
            let negative = of_intent.iter().filter(|r| is_negative(r)).count();
            SuccessRow {
                intent: name.to_string(),
                interactions: of_intent.len(),
                negative,
                success_rate: (of_intent.len() - negative) as f64 / of_intent.len() as f64,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.interactions.cmp(&a.interactions).then(a.intent.cmp(&b.intent)));
    rows.truncate(k);
    rows
}

/// Renders success rows as the horizontal-bar listing of Figs. 11/12.
pub fn render_success_rows(rows: &[SuccessRow]) -> String {
    let max = rows.iter().map(|r| r.interactions).max().unwrap_or(1).max(1);
    let mut out = String::new();
    for r in rows {
        let width = (r.interactions * 40 / max).max(1);
        out.push_str(&format!(
            "{:<36} {:<40} {:>5.1}%  ({} interactions, {} negative)\n",
            r.intent,
            "#".repeat(width),
            r.success_rate * 100.0,
            r.interactions,
            r.negative
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{run_traffic, SimConfig};
    use obcs_mdx::data::MdxDataConfig;
    use obcs_mdx::ConversationalMdx;

    struct World {
        onto: Ontology,
        kb: KnowledgeBase,
        mapping: OntologyMapping,
        space: ConversationSpace,
        outcome: SimOutcome,
    }

    fn world() -> World {
        let cfg = MdxDataConfig { drugs: 80, seed: 7 };
        let (onto, kb, mapping, space) = ConversationalMdx::bootstrap_space(cfg);
        let mut mdx = ConversationalMdx::with_config(cfg);
        let pools = ValuePools::from_kb(&kb);
        let outcome = run_traffic(
            &mut mdx.agent,
            &onto,
            &pools,
            SimConfig { interactions: 800, seed: 11, ..SimConfig::default() },
        );
        World { onto, kb, mapping, space, outcome }
    }

    #[test]
    fn full_evaluation_shapes_match_paper() {
        let w = world();
        // Table 5.
        let (report, rows) =
            classifier_evaluation(&w.space, &w.onto, &w.kb, &w.mapping, &w.outcome, 12, 99);
        assert_eq!(rows.len(), 10);
        assert!(
            report.macro_f1 > 0.6 && report.macro_f1 < 0.99,
            "macro F1 should be high but imperfect: {}",
            report.macro_f1
        );
        // The most-used intent matches the paper's Table 5.
        assert_eq!(rows[0].intent, "Drug Dosage for Condition");
        // DRUG_GENERAL is among the weaker intents (paper: 0.65).
        let general = report.class("DRUG_GENERAL").expect("DRUG_GENERAL evaluated");
        assert!(
            general.f1 <= report.macro_f1 + 0.05,
            "keyword-style intent should not outperform the average: {} vs {}",
            general.f1,
            report.macro_f1
        );

        // Figure 11.
        let (bars, overall) = fig11(&w.outcome, 10);
        assert_eq!(bars.len(), 10);
        assert!(overall > 0.9, "overall user-feedback success: {overall}");
        for bar in &bars {
            assert!(bar.success_rate > 0.85, "{bar:?}");
        }

        // Figure 12: SME rate below user rate on the same sample.
        let (sme_bars, sme_rate, user_rate) = fig12(&w.outcome, 0.10, 10, 5);
        assert!(!sme_bars.is_empty());
        assert!(
            sme_rate < user_rate,
            "SME judgement is stricter: sme {sme_rate} vs user {user_rate}"
        );
        assert!(sme_rate > 0.6, "sme rate: {sme_rate}");
    }

    #[test]
    fn fig12_sampling_is_deterministic() {
        let w = world();
        let a = fig12(&w.outcome, 0.1, 10, 3);
        let b = fig12(&w.outcome, 0.1, 10, 3);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn render_success_rows_formats_bars() {
        let rows = vec![SuccessRow {
            intent: "X".into(),
            interactions: 10,
            negative: 1,
            success_rate: 0.9,
        }];
        let txt = render_success_rows(&rows);
        assert!(txt.contains("90.0%"));
        assert!(txt.contains('#'));
    }
}
