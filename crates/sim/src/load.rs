//! Socket load generator: drives the Table 5 intent mix against a
//! running `obcs-serve` server from N concurrent connections.
//!
//! This is the over-the-wire sibling of [`crate::traffic::run_traffic`]:
//! the same deterministic per-connection RNG streams, the same
//! utterance generator and intent mix, but every turn crosses a real
//! TCP socket and is timed wall-clock, so the outcome yields the
//! p50/p99 turn latency and turns/sec numbers `repro serve` commits to
//! BENCH_perf.json. Elicitation follow-ups are answered from the reply
//! text (the remote client cannot see the engine's pending concept), so
//! multi-turn sessions exercise the server's session table for real.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use obcs_serve::{Client, ClientError};

use crate::traffic::{draw_intent, splitmix64, INTENT_MIX};
use crate::utterance::{generate, ValuePools};

/// Load-run shape: how many connections, how much traffic each.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections (each gets its own OS thread and
    /// RNG stream).
    pub connections: usize,
    /// Turns each connection sends (elicitation follow-ups included).
    pub turns_per_connection: usize,
    /// Master seed; connection `c` derives its stream with the same
    /// splitmix64 scheme the in-process replay shards use.
    pub seed: u64,
    /// Turns grouped under one session id before the client ends the
    /// session and opens the next.
    pub session_turns: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { connections: 4, turns_per_connection: 100, seed: 7, session_turns: 6 }
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Wall-clock latency of every turn, nanoseconds, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Total wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Turns sent and answered.
    pub turns: usize,
    /// Turns answered with `shed: true` (admission control).
    pub shed: usize,
    /// Turns answered `degraded` by the engine itself (not shed).
    pub degraded: usize,
    /// Replies by reply-kind label.
    pub kinds: BTreeMap<String, usize>,
}

impl LoadOutcome {
    /// Latency quantile in milliseconds (`q` in `[0, 1]`).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.latencies_ns.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_ns.len());
        self.latencies_ns[rank - 1] as f64 / 1e6
    }

    /// Median turn latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 99th-percentile turn latency, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// Aggregate throughput over the run's wall time.
    pub fn turns_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.turns as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Answer an elicitation prompt from its text alone — the remote client
/// cannot inspect the engine's pending concept, so this mirrors the
/// cooperative in-process user by keyword.
fn elicitation_answer(prompt: &str, pools: &ValuePools, rng: &mut ChaCha8Rng) -> String {
    let lower = prompt.to_lowercase();
    let pick = |values: &[String], rng: &mut ChaCha8Rng| -> Option<String> {
        if values.is_empty() {
            None
        } else {
            Some(values[rng.gen_range(0..values.len())].clone())
        }
    };
    if lower.contains("age") {
        pick(&pools.ages, rng).unwrap_or_else(|| "adult".to_string())
    } else if lower.contains("condition") {
        pick(&pools.conditions, rng).unwrap_or_else(|| "adult".to_string())
    } else if lower.contains("drug") || lower.contains("medication") {
        pick(&pools.drugs, rng).unwrap_or_else(|| "adult".to_string())
    } else {
        "adult".to_string()
    }
}

struct ConnOutcome {
    latencies_ns: Vec<u64>,
    shed: usize,
    degraded: usize,
    kinds: BTreeMap<String, usize>,
}

fn run_connection(
    addr: SocketAddr,
    pools: &ValuePools,
    config: &LoadConfig,
    conn: usize,
) -> Result<ConnOutcome, ClientError> {
    let mut client = Client::connect(addr)?;
    client.hello(&format!("load-{conn}"))?;
    let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(config.seed ^ splitmix64(conn as u64 + 1)));
    let total_weight: f64 = INTENT_MIX.iter().map(|(_, w)| w).sum();

    let mut out = ConnOutcome {
        latencies_ns: Vec::with_capacity(config.turns_per_connection),
        shed: 0,
        degraded: 0,
        kinds: BTreeMap::new(),
    };
    let mut sent = 0usize;
    let mut session_counter = 0usize;
    while sent < config.turns_per_connection {
        let session = format!("c{conn}-s{session_counter}");
        session_counter += 1;
        let mut in_session = 0usize;
        while in_session < config.session_turns.max(1) && sent < config.turns_per_connection {
            let intent = draw_intent(&mut rng, total_weight);
            let Some(utterance) = generate(intent, pools, &mut rng) else {
                continue;
            };
            let mut utterance = utterance;
            // One drawn turn plus up to two elicitation follow-ups.
            for _ in 0..3 {
                let start = Instant::now();
                let reply = client.turn(&session, &utterance)?;
                out.latencies_ns.push(start.elapsed().as_nanos() as u64);
                sent += 1;
                in_session += 1;
                *out.kinds.entry(reply.kind.clone()).or_insert(0) += 1;
                if reply.shed {
                    out.shed += 1;
                } else if reply.kind == "degraded" {
                    out.degraded += 1;
                }
                if reply.kind != "elicitation" || sent >= config.turns_per_connection {
                    break;
                }
                utterance = elicitation_answer(&reply.text, pools, &mut rng);
            }
        }
        client.end(&session)?;
    }
    Ok(out)
}

/// Run the full load profile against a server at `addr`. Fails on the
/// first protocol or socket error on any connection — a load run with
/// client bugs is not a benchmark.
pub fn run_load(
    addr: SocketAddr,
    pools: &ValuePools,
    config: &LoadConfig,
) -> Result<LoadOutcome, ClientError> {
    let started = Instant::now();
    let results: Vec<Result<ConnOutcome, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|c| scope.spawn(move || run_connection(addr, pools, config, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(ClientError::Decode("connection thread panicked".to_string())),
            })
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut outcome = LoadOutcome { wall_ms, ..LoadOutcome::default() };
    for result in results {
        let conn = result?;
        outcome.latencies_ns.extend(conn.latencies_ns);
        outcome.shed += conn.shed;
        outcome.degraded += conn.degraded;
        for (kind, n) in conn.kinds {
            *outcome.kinds.entry(kind).or_insert(0) += n;
        }
    }
    outcome.latencies_ns.sort_unstable();
    outcome.turns = outcome.latencies_ns.len();
    Ok(outcome)
}
