//! Noise models observed in the paper's real logs: misspellings,
//! keyword-style queries, and gibberish.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Applies one random misspelling (adjacent swap, drop, or duplication) to
/// a random word of length ≥ 4.
pub fn misspell(text: &str, rng: &mut ChaCha8Rng) -> String {
    let words: Vec<&str> = text.split(' ').collect();
    let candidates: Vec<usize> =
        words.iter().enumerate().filter(|(_, w)| w.chars().count() >= 4).map(|(i, _)| i).collect();
    let Some(&target) = pick(&candidates, rng) else {
        return text.to_string();
    };
    let mut out = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        if i == target {
            out.push(misspell_word(w, rng));
        } else {
            out.push((*w).to_string());
        }
    }
    out.join(" ")
}

fn misspell_word(word: &str, rng: &mut ChaCha8Rng) -> String {
    let chars: Vec<char> = word.chars().collect();
    let n = chars.len();
    match rng.gen_range(0..3) {
        // Swap two adjacent interior characters.
        0 => {
            let i = rng.gen_range(1..n - 1);
            let mut c = chars.clone();
            c.swap(i, i - 1);
            c.into_iter().collect()
        }
        // Drop one interior character.
        1 => {
            let i = rng.gen_range(1..n - 1);
            chars.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &c)| c).collect()
        }
        // Duplicate one character.
        _ => {
            let i = rng.gen_range(0..n);
            let mut c = chars.clone();
            c.insert(i, chars[i]);
            c.into_iter().collect()
        }
    }
}

/// Reduces an utterance to keyword style: keeps only capitalised words,
/// digits, and words longer than 5 characters (entity-ish tokens), in
/// order — "show me the dosage for Aspirin" → "dosage Aspirin".
pub fn keywordize(text: &str) -> String {
    let kept: Vec<&str> = text
        .split_whitespace()
        .filter(|w| {
            w.chars().next().is_some_and(|c| c.is_uppercase() || c.is_ascii_digit())
                || w.chars().count() > 5
        })
        .collect();
    if kept.is_empty() {
        text.to_string()
    } else {
        kept.join(" ")
    }
}

/// A short burst of gibberish ("apfjhd").
pub fn gibberish(rng: &mut ChaCha8Rng) -> String {
    let len = rng.gen_range(4..9);
    (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
}

fn pick<'a, T>(slice: &'a [T], rng: &mut ChaCha8Rng) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.gen_range(0..slice.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn misspell_changes_exactly_one_word() {
        let mut r = rng();
        let original = "show me the dosage for aspirin";
        let noisy = misspell(original, &mut r);
        assert_ne!(noisy, original);
        let a: Vec<&str> = original.split(' ').collect();
        let b: Vec<&str> = noisy.split(' ').collect();
        assert_eq!(a.len(), b.len());
        let diffs = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn misspell_short_text_is_identity() {
        let mut r = rng();
        assert_eq!(misspell("a b c", &mut r), "a b c");
    }

    #[test]
    fn misspell_is_deterministic_per_seed() {
        let a = misspell("dosage for tazarotene", &mut rng());
        let b = misspell("dosage for tazarotene", &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn keywordize_keeps_entities() {
        assert_eq!(keywordize("show me the dosage for Aspirin"), "dosage Aspirin");
        assert_eq!(keywordize("what treats Psoriasis"), "treats Psoriasis");
        // Nothing survives → unchanged.
        assert_eq!(keywordize("a b c"), "a b c");
    }

    #[test]
    fn gibberish_is_alphabetic_and_short() {
        let mut r = rng();
        let g = gibberish(&mut r);
        assert!(g.len() >= 4 && g.len() <= 9);
        assert!(g.chars().all(|c| c.is_ascii_lowercase()));
    }
}
