//! The 7-month traffic replay (paper §7.2): simulated users drawn from the
//! published intent mix interact with the agent; a calibrated feedback
//! model attaches thumbs up/down the way the paper observed real users
//! doing (negative feedback credible, positive rare, occasional
//! accidental taps).
//!
//! ## Sharded replay and the determinism contract
//!
//! Replay is the expensive side of regenerating the paper's Table 5 /
//! Fig. 11–12 statistics, so it shards across threads. The unit of work is
//! the *session* (a run of interactions sharing agent context):
//!
//! 1. session boundaries are planned up front from a dedicated RNG stream
//!    (they depend only on `seed` and `mean_session_length`, never on what
//!    happens inside an interaction);
//! 2. every session draws its randomness from its own `ChaCha8Rng`,
//!    derived from `(seed, first interaction index)`;
//! 3. whole sessions are assigned to shards in contiguous, interaction-
//!    balanced chunks; each shard replays its sessions on a
//!    [`ConversationAgent::fork_session`] fork sharing the trained NLU via
//!    `Arc`; records are concatenated in shard order.
//!
//! Because sessions are atomic and self-seeded, the record sequence is
//! **bit-for-bit identical for every `parallelism` value** (a test
//! enforces `parallelism = N` ≡ `parallelism = 1`). `parallelism = 1`
//! replays every session on the caller's thread and agent — no forks, no
//! threads.

use std::sync::Arc;

use obcs_agent::{ConversationAgent, Feedback, ReplyKind};
use obcs_ontology::Ontology;
use obcs_telemetry::{CollectingRecorder, Recorder, TraceReport};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::noise;
use crate::utterance::{generate, ValuePools};

/// The intent mix of the simulated traffic, in relative weights. The
/// top-10 weights are the usage column of the paper's Table 5; the tail is
/// split across the remaining intents.
pub const INTENT_MIX: &[(&str, f64)] = &[
    ("Drug Dosage for Condition", 150.0),
    ("Administration of Drug", 120.0),
    ("IV Compatibility of Drug", 110.0),
    ("Drugs That Treat Condition", 100.0),
    ("Uses of Drug", 90.0),
    ("Adverse Effects of Drug", 50.0),
    ("Drug-Drug Interactions", 40.0),
    ("DRUG_GENERAL", 40.0),
    ("Dose Adjustments for Drug", 30.0),
    ("Regulatory Status for Drug", 20.0),
    ("Pharmacokinetics", 30.0),
    ("Precautions of Drug", 25.0),
    ("Risks of Drug", 15.0),
    ("Dosages of Drug", 15.0),
    ("Toxicology of Drug", 10.0),
    ("Monitoring of Drug", 10.0),
    ("Mechanism of Action of Drug", 10.0),
    ("Conditions Treated by Drug", 10.0),
    ("Drugs That May Cause Condition", 5.0),
    ("Conditions May Be Caused By Drug", 5.0),
    ("Drugs and Dosage for Condition", 5.0),
    ("Drug Toxicology for Condition", 3.0),
    ("Drugs and Toxicology for Condition", 2.0),
    ("Greeting", 20.0),
    ("Appreciation", 20.0),
    ("Acknowledgement", 12.0),
    ("Affirmation", 10.0),
    ("Disconfirmation", 8.0),
    ("Closing", 15.0),
    ("Help Request", 6.0),
    ("Repeat Request", 3.0),
    ("Definition Request", 5.0),
    ("Paraphrase Request", 3.0),
    ("Abort", 3.0),
    ("Capability Check", 3.0),
    ("Chitchat", 7.0),
];

/// The feedback behaviour of simulated users (§7.2 observations).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeedbackModel {
    /// P(thumbs down | interaction went wrong).
    pub p_down_given_wrong: f64,
    /// P(accidental thumbs down | interaction was fine).
    pub p_down_accidental: f64,
    /// P(thumbs up | interaction was fine) — rare, per the paper.
    pub p_up_given_right: f64,
}

impl Default for FeedbackModel {
    fn default() -> Self {
        FeedbackModel { p_down_given_wrong: 0.45, p_down_accidental: 0.004, p_up_given_right: 0.03 }
    }
}

/// Traffic-simulation configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of user interactions (logical requests, possibly multi-turn).
    pub interactions: usize,
    pub seed: u64,
    /// Probability an utterance gets a misspelling.
    pub misspell_rate: f64,
    /// Probability a domain utterance is reduced to keyword style.
    pub keyword_rate: f64,
    /// Probability of a gibberish interaction ("apfjhd").
    pub gibberish_rate: f64,
    /// Mean number of requests per session (geometric). 1.0 = every
    /// interaction starts a fresh conversation; larger values keep the
    /// persistent context alive across requests, as the paper's real
    /// sessions do (§6.3: treatment → definition → dosage in one session).
    pub mean_session_length: f64,
    pub feedback: FeedbackModel,
    /// Replay shard threads: `1` runs every session sequentially on the
    /// caller's thread and agent, `N` uses `N` threads, and `0` ("auto")
    /// uses one thread per available core — but only once the replay is
    /// at least [`AUTO_FORK_THRESHOLD`] interactions, because forking
    /// per-shard agents and spawning threads costs more than it saves on
    /// small replays. The produced record sequence is identical for
    /// every value (see the module docs).
    pub parallelism: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            interactions: 5000,
            seed: 20200614,
            misspell_rate: 0.04,
            keyword_rate: 0.05,
            gibberish_rate: 0.006,
            mean_session_length: 1.0,
            feedback: FeedbackModel::default(),
            parallelism: 1,
        }
    }
}

/// One simulated interaction with its ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRecord {
    /// The intent the simulated user had in mind (`None` for gibberish).
    pub expected_intent: Option<String>,
    /// The (possibly noisy) first utterance.
    pub utterance: String,
    /// The intent the system detected on the final reply.
    pub detected_intent: Option<String>,
    pub reply_kind: ReplyKind,
    /// Ground truth: did the agent do the right thing (SME view)?
    pub correct: bool,
    pub feedback: Option<Feedback>,
    /// Total user turns the interaction took (1 + elicitation answers).
    pub turns: usize,
}

/// The traffic-simulation outcome.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    pub records: Vec<SimRecord>,
}

impl SimOutcome {
    /// Overall success rate per the paper's Equation 1 (user feedback).
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let negative =
            self.records.iter().filter(|r| r.feedback == Some(Feedback::ThumbsDown)).count();
        (self.records.len() - negative) as f64 / self.records.len() as f64
    }

    /// Ground-truth accuracy (share of interactions the SME would mark
    /// positive).
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.correct).count() as f64 / self.records.len() as f64
    }
}

/// Below this interaction count, auto parallelism (`parallelism = 0`)
/// replays sequentially instead of forking shards: cloning per-shard
/// agent forks and spawning threads is fixed overhead that a small
/// replay never amortises (the quick perf profile measured sharded
/// replay *slower* than sequential at 400 interactions). An explicit
/// `parallelism = N` is always honoured — the threshold only gates the
/// automatic choice.
pub const AUTO_FORK_THRESHOLD: usize = 1_000;

/// The shard-thread count a replay will actually use: explicit
/// `parallelism = N` verbatim, auto (`0`) resolves to the core count
/// once the replay clears [`AUTO_FORK_THRESHOLD`] interactions and to
/// `1` below it, and everything is capped by the session count (a shard
/// needs at least one whole session).
pub fn planned_threads(config: &SimConfig, session_count: usize) -> usize {
    let requested = match config.parallelism {
        0 if config.interactions < AUTO_FORK_THRESHOLD => 1,
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };
    requested.min(session_count.max(1))
}

/// A planned session: `len` consecutive interactions starting at global
/// interaction index `start`, sharing agent context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Session {
    start: usize,
    len: usize,
}

/// Draws the session boundaries for a configuration. Uses a dedicated RNG
/// stream so the plan depends only on the config, never on interaction
/// outcomes — the property that makes whole sessions relocatable across
/// shards.
fn plan_sessions(config: &SimConfig) -> Vec<Session> {
    // P(session continues) under a geometric session-length model.
    let p_continue = if config.mean_session_length <= 1.0 {
        0.0
    } else {
        1.0 - 1.0 / config.mean_session_length
    };
    let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(config.seed ^ 0x5e55_10b0));
    let mut sessions: Vec<Session> = Vec::new();
    for i in 0..config.interactions {
        if i > 0 && rng.gen_bool(p_continue) {
            sessions.last_mut().expect("first interaction opened a session").len += 1;
        } else {
            sessions.push(Session { start: i, len: 1 });
        }
    }
    sessions
}

/// SplitMix64 finaliser — decorrelates per-session seeds derived from the
/// master seed and the session's start index.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The session's private randomness, derived from the master seed and the
/// session's first interaction index.
fn session_rng(seed: u64, session: &Session) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(session.start as u64 + 1)))
}

/// Replays one session: resets the agent, then runs its interactions in
/// order, appending records to `out`.
fn run_session(
    agent: &mut ConversationAgent,
    onto: &Ontology,
    pools: &ValuePools,
    config: &SimConfig,
    session: &Session,
    total_weight: f64,
    out: &mut Vec<SimRecord>,
) {
    agent.reset();
    let mut rng = session_rng(config.seed, session);
    for _ in 0..session.len {
        let record = if rng.gen_bool(config.gibberish_rate) {
            run_gibberish(agent, &mut rng)
        } else {
            let expected = draw_intent(&mut rng, total_weight);
            run_interaction(agent, onto, pools, expected, *config, &mut rng)
        };
        // Feedback model.
        let feedback = if record.correct {
            if rng.gen_bool(config.feedback.p_down_accidental) {
                Some(Feedback::ThumbsDown)
            } else if rng.gen_bool(config.feedback.p_up_given_right) {
                Some(Feedback::ThumbsUp)
            } else {
                None
            }
        } else if rng.gen_bool(config.feedback.p_down_given_wrong) {
            Some(Feedback::ThumbsDown)
        } else {
            None
        };
        if let Some(fb) = feedback {
            agent.feedback(fb);
        }
        out.push(SimRecord { feedback, ..record });
    }
}

/// Splits the session plan into at most `shards` contiguous chunks,
/// balanced by interaction count.
fn partition_sessions(sessions: &[Session], shards: usize) -> Vec<&[Session]> {
    let total: usize = sessions.iter().map(|s| s.len).sum();
    let mut chunks = Vec::with_capacity(shards);
    let mut begin = 0usize;
    let mut done = 0usize;
    for shard in 0..shards {
        if begin >= sessions.len() {
            break;
        }
        // Even share of the interactions still unassigned.
        let target = (total - done).div_ceil(shards - shard);
        let mut end = begin;
        let mut taken = 0usize;
        while end < sessions.len() && (taken < target || end == begin) {
            taken += sessions[end].len;
            end += 1;
        }
        chunks.push(&sessions[begin..end]);
        begin = end;
        done += taken;
    }
    chunks
}

/// How a traced replay measures span durations (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceMode {
    /// No tracing: the replay runs through the agent's installed recorder
    /// (the zero-cost no-op by default).
    #[default]
    Off,
    /// Deterministic tick clock: traces are bit-for-bit identical across
    /// runs, machines, and `parallelism` values.
    Ticks,
    /// Wall-clock nanoseconds: real latencies, machine-dependent.
    Wall,
}

impl TraceMode {
    fn recorder(self) -> Option<Arc<CollectingRecorder>> {
        match self {
            TraceMode::Off => None,
            TraceMode::Ticks => Some(Arc::new(CollectingRecorder::ticks())),
            TraceMode::Wall => Some(Arc::new(CollectingRecorder::wall())),
        }
    }
}

/// Runs the traffic simulation against an assembled agent, sharding whole
/// sessions across `config.parallelism` threads. The record sequence is
/// identical for every parallelism value (see the module docs).
pub fn run_traffic(
    agent: &mut ConversationAgent,
    onto: &Ontology,
    pools: &ValuePools,
    config: SimConfig,
) -> SimOutcome {
    run_traffic_traced(agent, onto, pools, config, TraceMode::Off).0
}

/// Like [`run_traffic`], optionally collecting a telemetry trace of every
/// replayed turn. With `TraceMode::Off` the second element is `None` and
/// the replay is exactly [`run_traffic`]. Otherwise each shard records
/// into its own [`CollectingRecorder`] (per-shard tick clocks start at
/// zero) and the per-shard reports are merged in shard order — which
/// equals session order — so under [`TraceMode::Ticks`] the merged report
/// is identical for every `parallelism` value (a test enforces it).
pub fn run_traffic_traced(
    agent: &mut ConversationAgent,
    onto: &Ontology,
    pools: &ValuePools,
    config: SimConfig,
    mode: TraceMode,
) -> (SimOutcome, Option<TraceReport>) {
    let total_weight: f64 = INTENT_MIX.iter().map(|&(_, w)| w).sum();
    let sessions = plan_sessions(&config);
    let threads = planned_threads(&config, sessions.len());

    if threads <= 1 {
        // Install the collecting recorder on the caller's agent for the
        // duration of the replay, restoring whatever was there before.
        let recorder = mode.recorder();
        let prev = recorder.as_ref().map(|rec| {
            let prev = agent.recorder();
            agent.set_recorder(Arc::clone(rec) as Arc<dyn Recorder>);
            prev
        });
        let mut records = Vec::with_capacity(config.interactions);
        for session in &sessions {
            run_session(agent, onto, pools, &config, session, total_weight, &mut records);
        }
        if let Some(prev) = prev {
            agent.set_recorder(prev);
        }
        return (SimOutcome { records }, recorder.map(|rec| rec.take_report()));
    }

    let chunks = partition_sessions(&sessions, threads);
    // Forks share the trained NLU via `Arc`; each shard owns its fork and
    // (when tracing) its own recorder — the open-span stack is logically
    // single-threaded, so recorders are never shared across shards.
    let mut recorders: Vec<Arc<CollectingRecorder>> = Vec::new();
    let forks: Vec<ConversationAgent> = chunks
        .iter()
        .map(|_| {
            let mut fork = agent.fork_session();
            if let Some(rec) = mode.recorder() {
                fork.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
                recorders.push(rec);
            }
            fork
        })
        .collect();
    let shard_records: Vec<Vec<SimRecord>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .zip(forks)
            .map(|(chunk, mut shard_agent)| {
                let config = &config;
                scope.spawn(move || {
                    let mut records = Vec::new();
                    for session in *chunk {
                        run_session(
                            &mut shard_agent,
                            onto,
                            pools,
                            config,
                            session,
                            total_weight,
                            &mut records,
                        );
                    }
                    records
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("replay shard panicked")).collect()
    });
    let report = (mode != TraceMode::Off)
        .then(|| TraceReport::merge(recorders.iter().map(|rec| rec.take_report()).collect()));
    (SimOutcome { records: shard_records.into_iter().flatten().collect() }, report)
}

pub(crate) fn draw_intent(rng: &mut ChaCha8Rng, total_weight: f64) -> &'static str {
    let mut x = rng.gen_range(0.0..total_weight);
    for (name, w) in INTENT_MIX {
        if x < *w {
            return name;
        }
        x -= w;
    }
    INTENT_MIX.last().expect("mix non-empty").0
}

fn run_gibberish(agent: &mut ConversationAgent, rng: &mut ChaCha8Rng) -> SimRecord {
    let utterance = noise::gibberish(rng);
    let reply = agent.respond(&utterance);
    SimRecord {
        expected_intent: None,
        utterance,
        detected_intent: None,
        reply_kind: reply.kind,
        // Meaningless input is a negative interaction in the SME review
        // (§7.2), regardless of the agent's graceful fallback.
        correct: false,
        feedback: None,
        turns: 1,
    }
}

fn run_interaction(
    agent: &mut ConversationAgent,
    onto: &Ontology,
    pools: &ValuePools,
    expected: &str,
    config: SimConfig,
    rng: &mut ChaCha8Rng,
) -> SimRecord {
    let clean = generate(expected, pools, rng)
        .unwrap_or_else(|| panic!("no templates for intent `{expected}`"));
    let is_management = is_management_intent(expected);
    let mut utterance = clean;
    if !is_management && rng.gen_bool(config.keyword_rate) {
        utterance = noise::keywordize(&utterance);
    }
    if rng.gen_bool(config.misspell_rate) {
        utterance = noise::misspell(&utterance, rng);
    }

    let mut reply = agent.respond(&utterance);
    let mut turns = 1;
    // Answer elicitations the way a cooperative user would (Fig. 10b).
    while reply.kind == ReplyKind::Elicitation && turns < 4 {
        let answer = match agent.context().eliciting {
            Some(concept) => match onto.concept_name(concept) {
                "AgeGroup" => pools.ages[rng.gen_range(0..pools.ages.len())].clone(),
                "Condition" => pools.conditions[rng.gen_range(0..pools.conditions.len())].clone(),
                "Drug" => pools.drugs[rng.gen_range(0..pools.drugs.len())].clone(),
                _ => "adult".to_string(),
            },
            None => "adult".to_string(),
        };
        reply = agent.respond(&answer);
        turns += 1;
    }

    let detected_intent =
        reply.intent.and_then(|id| agent.space().intent(id)).map(|i| i.name.clone());
    let correct = judge(expected, &detected_intent, &reply);
    SimRecord {
        expected_intent: Some(expected.to_string()),
        utterance,
        detected_intent,
        reply_kind: reply.kind,
        correct,
        feedback: None,
        turns,
    }
}

/// Ground-truth judgement of one interaction (the SME criterion of §7.2):
/// the agent must have done the semantically right thing for the user's
/// actual request.
pub fn judge(expected: &str, detected: &Option<String>, reply: &obcs_agent::AgentReply) -> bool {
    if expected == "DRUG_GENERAL" {
        return reply.kind == ReplyKind::Proposal;
    }
    if is_management_intent(expected) {
        return match expected {
            "Closing" => reply.kind == ReplyKind::Closing,
            // "no" with no pending proposal legitimately closes.
            "Disconfirmation" => {
                matches!(reply.kind, ReplyKind::Management | ReplyKind::Closing)
            }
            _ => reply.kind == ReplyKind::Management,
        };
    }
    // A fulfilment of the right intent is correct even when the KB has no
    // recorded content for the specific combination ("no results found" is
    // a faithful answer); wrong-intent fulfilments and non-fulfilments are
    // errors. Some intent pairs answer the same user need from different
    // pattern shapes and count as equivalent.
    if reply.kind != ReplyKind::Fulfilment {
        return false;
    }
    let Some(det) = detected.as_deref() else {
        return false;
    };
    det == expected
        || EQUIVALENT
            .iter()
            .any(|&(a, b)| (a == expected && b == det) || (b == expected && a == det))
}

/// Intent pairs that fulfil the same user need (a bare dosage request is
/// answered correctly whether it is routed through the drug-scoped or the
/// condition-scoped dosage intent).
const EQUIVALENT: &[(&str, &str)] = &[
    ("Dosages of Drug", "Drug Dosage for Condition"),
    ("Toxicology of Drug", "Drug Toxicology for Condition"),
    ("Drugs and Dosage for Condition", "Drugs That Treat Condition"),
    ("Drugs and Toxicology for Condition", "Drug Toxicology for Condition"),
];

/// Whether an intent is conversation management (by the MDX intent names).
pub fn is_management_intent(name: &str) -> bool {
    obcs_mdx::sme::MANAGEMENT_INTENTS.iter().any(|&(n, _)| n == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_mdx::data::MdxDataConfig;
    use obcs_mdx::ConversationalMdx;

    fn small_sim(interactions: usize, seed: u64) -> SimOutcome {
        let (onto, kb, _, _) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        let pools = ValuePools::from_kb(&kb);
        let mut mdx = ConversationalMdx::with_config(MdxDataConfig { drugs: 80, seed: 7 });
        run_traffic(
            &mut mdx.agent,
            &onto,
            &pools,
            SimConfig { interactions, seed, ..SimConfig::default() },
        )
    }

    #[test]
    fn traffic_runs_and_mostly_succeeds() {
        let outcome = small_sim(300, 1);
        assert_eq!(outcome.records.len(), 300);
        let acc = outcome.accuracy();
        assert!(acc > 0.7, "ground-truth accuracy too low: {acc}");
        let sr = outcome.success_rate();
        assert!(sr > 0.9, "user-feedback success rate too low: {sr}");
        assert!(sr > acc, "thumbs-down is sparser than true errors");
    }

    #[test]
    fn traffic_is_deterministic() {
        let a = small_sim(100, 5);
        let b = small_sim(100, 5);
        let ka: Vec<&str> = a.records.iter().map(|r| r.utterance.as_str()).collect();
        let kb_: Vec<&str> = b.records.iter().map(|r| r.utterance.as_str()).collect();
        assert_eq!(ka, kb_);
        assert_eq!(a.success_rate(), b.success_rate());
    }

    #[test]
    fn mix_covers_all_intents() {
        let (_, _, _, space) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        for (name, _) in INTENT_MIX {
            assert!(space.intent_by_name(name).is_some(), "mix references unknown intent `{name}`");
        }
        assert_eq!(INTENT_MIX.len(), 36);
    }

    #[test]
    fn elicitation_followups_happen() {
        let outcome = small_sim(300, 2);
        assert!(
            outcome.records.iter().any(|r| r.turns > 1),
            "some interactions should need elicitation follow-ups"
        );
    }

    #[test]
    fn multi_request_sessions_still_mostly_succeed() {
        let (onto, kb, _, _) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        let pools = ValuePools::from_kb(&kb);
        let mut mdx = ConversationalMdx::with_config(MdxDataConfig { drugs: 80, seed: 7 });
        let outcome = run_traffic(
            &mut mdx.agent,
            &onto,
            &pools,
            SimConfig {
                interactions: 300,
                seed: 21,
                mean_session_length: 3.0,
                ..SimConfig::default()
            },
        );
        // Persistent context across requests costs a little accuracy
        // (stale entities can leak between topics) but the system must
        // stay in a usable band.
        assert!(outcome.accuracy() > 0.6, "accuracy {}", outcome.accuracy());
        assert!(outcome.success_rate() > 0.85, "rate {}", outcome.success_rate());
    }

    fn traced_sim(interactions: usize, seed: u64, parallelism: usize) -> (SimOutcome, TraceReport) {
        traced_sim_with_caching(interactions, seed, parallelism, true)
    }

    fn traced_sim_with_caching(
        interactions: usize,
        seed: u64,
        parallelism: usize,
        caching: bool,
    ) -> (SimOutcome, TraceReport) {
        let (onto, kb, _, _) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        let pools = ValuePools::from_kb(&kb);
        let mut mdx = ConversationalMdx::with_config(MdxDataConfig { drugs: 80, seed: 7 });
        mdx.agent.set_caching(caching);
        let (outcome, report) = run_traffic_traced(
            &mut mdx.agent,
            &onto,
            &pools,
            SimConfig { interactions, seed, parallelism, ..SimConfig::default() },
            TraceMode::Ticks,
        );
        (outcome, report.expect("tracing was on"))
    }

    #[test]
    fn traced_replay_collects_turn_spans() {
        let (outcome, report) = traced_sim(60, 11, 1);
        assert_eq!(report.unit, "ticks");
        // One turn span per user turn replayed (interactions plus
        // elicitation answers).
        let turns: usize = outcome.records.iter().map(|r| r.turns).sum();
        assert_eq!(report.stages["turn"].count, turns as u64);
        assert_eq!(report.counters[&("turns".into(), String::new())], turns as u64);
        for stage in ["annotate", "classify", "dialogue_eval"] {
            assert!(report.stages.contains_key(stage), "missing stage {stage}");
        }
        obcs_telemetry::validate_jsonl(&report.to_jsonl()).expect("well-formed trace");
    }

    #[test]
    fn traced_replay_is_deterministic_at_any_parallelism() {
        // Two identical traced replays → identical reports; and the merged
        // sharded report equals the sequential one bit for bit (per-shard
        // tick clocks start at zero and sessions are atomic).
        let (outcome1, sequential) = traced_sim(80, 13, 1);
        let (outcome2, again) = traced_sim(80, 13, 1);
        assert_eq!(outcome1, outcome2);
        assert_eq!(sequential, again);
        for parallelism in [3, 0] {
            let (outcome_p, sharded) = traced_sim(80, 13, parallelism);
            assert_eq!(outcome1, outcome_p, "records differ at parallelism {parallelism}");
            assert_eq!(sequential, sharded, "trace differs at parallelism {parallelism}");
            assert_eq!(sequential.to_jsonl(), sharded.to_jsonl());
        }
    }

    #[test]
    fn caches_do_not_change_records_or_traces_at_any_parallelism() {
        // DESIGN.md §12's determinism contract: the pipeline caches are
        // value- and trace-invisible. Cache hits return the same values a
        // recompute would and replay the same span structure on the tick
        // clock, so a cached replay is bit-for-bit identical to an
        // uncached one — sequentially and across shard layouts (per-fork
        // KB caches warm independently; the NLU memo is shared).
        let (outcome_off, trace_off) = traced_sim_with_caching(80, 13, 1, false);
        for parallelism in [1, 3] {
            let (outcome_on, trace_on) = traced_sim_with_caching(80, 13, parallelism, true);
            assert_eq!(outcome_off, outcome_on, "records differ at parallelism {parallelism}");
            assert_eq!(
                trace_off.to_jsonl(),
                trace_on.to_jsonl(),
                "trace differs with caches on at parallelism {parallelism}"
            );
        }
    }

    #[test]
    fn untraced_replay_returns_no_report() {
        let (onto, kb, _, _) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        let pools = ValuePools::from_kb(&kb);
        let mut mdx = ConversationalMdx::with_config(MdxDataConfig { drugs: 80, seed: 7 });
        let (_, report) = run_traffic_traced(
            &mut mdx.agent,
            &onto,
            &pools,
            SimConfig { interactions: 20, seed: 1, ..SimConfig::default() },
            TraceMode::Off,
        );
        assert!(report.is_none());
    }

    #[test]
    fn auto_parallelism_stays_sequential_below_the_fork_threshold() {
        let small = SimConfig { interactions: AUTO_FORK_THRESHOLD - 1, ..SimConfig::default() };
        // parallelism = 0 on a small replay: no forks, no threads.
        let auto_small = SimConfig { parallelism: 0, ..small };
        assert_eq!(planned_threads(&auto_small, 500), 1);
        // Above the threshold auto mode shards (given enough sessions
        // and more than one core; single-core machines stay at 1).
        let auto_big =
            SimConfig { interactions: AUTO_FORK_THRESHOLD, parallelism: 0, ..SimConfig::default() };
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(planned_threads(&auto_big, 10_000), cores);
        // An explicit request is always honoured, threshold or not.
        let explicit = SimConfig { parallelism: 3, ..small };
        assert_eq!(planned_threads(&explicit, 500), 3);
        // The session count caps everything: a shard replays whole
        // sessions, so there is never a thread without one.
        assert_eq!(planned_threads(&explicit, 2), 2);
        assert_eq!(planned_threads(&auto_big, 1), 1);
    }

    #[test]
    fn gibberish_interactions_are_negative_ground_truth() {
        let outcome = small_sim(600, 3);
        let gibberish: Vec<&SimRecord> =
            outcome.records.iter().filter(|r| r.expected_intent.is_none()).collect();
        assert!(!gibberish.is_empty(), "gibberish rate should produce some");
        assert!(gibberish.iter().all(|r| !r.correct));
    }
}
