//! # obcs-sim
//!
//! The user simulator and evaluation harness for the OBCS reproduction.
//!
//! The paper's §7 evaluation is computed over seven months of real
//! clinician traffic against Conversational MDX. That log is proprietary
//! and PHI-laden, so this crate substitutes a *seeded traffic simulator*
//! (see DESIGN.md):
//!
//! * [`utterance`] — per-intent user phrasing generators whose surface
//!   forms deliberately differ from the bootstrapped training frames, so
//!   classifier evaluation measures generalisation, not memorisation;
//! * [`noise`] — the noise sources the paper reports in its logs:
//!   misspellings ("heavy misspellings"), keyword-style queries (§6.3
//!   User 480), gibberish ("apfjhd"), and accidental thumbs-down taps;
//! * [`traffic`] — the 7-month replay: interactions drawn from the
//!   paper's published intent mix (Table 5 usage column), driven through
//!   the full agent (including elicitation follow-ups), with a calibrated
//!   feedback model (negative feedback is credible, positive is rare —
//!   §7.2);
//! * [`eval`] — the statistics of §7: per-intent F1 (Table 5), success
//!   rate per Equation 1 from user feedback (Fig. 11), and the SME-judged
//!   10% sample (Fig. 12).
//!
//! Crate role: DESIGN.md §2; replay determinism contract: §7; traced
//! replay ([`run_traffic_traced`], [`TraceMode`]): §10.

pub mod eval;
pub mod load;
pub mod noise;
pub mod traffic;
pub mod utterance;

pub use traffic::{run_traffic, run_traffic_traced, SimConfig, SimOutcome, SimRecord, TraceMode};
