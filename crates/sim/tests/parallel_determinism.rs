//! The sharded-replay determinism contract: `run_traffic` must produce a
//! bit-for-bit identical record sequence for every `parallelism` value,
//! because sessions are atomic, self-seeded units merged in shard order.

use obcs_mdx::data::MdxDataConfig;
use obcs_mdx::ConversationalMdx;
use obcs_sim::traffic::{run_traffic, SimConfig, SimOutcome};
use obcs_sim::utterance::ValuePools;

fn replay(
    parallelism: usize,
    interactions: usize,
    seed: u64,
    mean_session_length: f64,
) -> SimOutcome {
    let (onto, kb, _, _) = ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 60, seed: 7 });
    let pools = ValuePools::from_kb(&kb);
    let mut mdx = ConversationalMdx::with_config(MdxDataConfig { drugs: 60, seed: 7 });
    run_traffic(
        &mut mdx.agent,
        &onto,
        &pools,
        SimConfig { interactions, seed, parallelism, mean_session_length, ..SimConfig::default() },
    )
}

#[test]
fn parallel_replay_equals_sequential_bit_for_bit() {
    let sequential = replay(1, 200, 11, 1.0);
    assert_eq!(sequential.records.len(), 200);
    for parallelism in [2, 4, 0] {
        let parallel = replay(parallelism, 200, 11, 1.0);
        assert_eq!(
            sequential, parallel,
            "parallelism {parallelism} diverged from the sequential replay"
        );
    }
}

#[test]
fn parallel_replay_equals_sequential_with_long_sessions() {
    // Multi-interaction sessions are the hard case: a session must never be
    // split across shards, or context-carrying interactions would change.
    let sequential = replay(1, 150, 23, 4.0);
    let parallel = replay(4, 150, 23, 4.0);
    assert_eq!(sequential, parallel);
    assert!(
        sequential.records.iter().any(|r| r.turns > 1),
        "the workload should include multi-turn interactions"
    );
}

#[test]
fn different_seeds_still_diverge() {
    // Guard against the sharding refactor accidentally flattening the
    // randomness: different seeds must produce different traffic.
    let a = replay(2, 60, 1, 1.0);
    let b = replay(2, 60, 2, 1.0);
    let ua: Vec<&str> = a.records.iter().map(|r| r.utterance.as_str()).collect();
    let ub: Vec<&str> = b.records.iter().map(|r| r.utterance.as_str()).collect();
    assert_ne!(ua, ub);
}
