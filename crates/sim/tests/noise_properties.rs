//! Property-based tests over the noise models: the simulated corruption
//! must stay within the envelope the evaluation assumes.

use obcs_sim::noise::{gibberish, keywordize, misspell};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    /// Misspelling never changes the number of words and perturbs at most
    /// one of them, by at most one character of length.
    #[test]
    fn misspell_is_a_single_word_perturbation(
        words in proptest::collection::vec("[a-z]{1,10}", 1..8),
        seed in 0u64..500,
    ) {
        let text = words.join(" ");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let noisy = misspell(&text, &mut rng);
        let a: Vec<&str> = text.split(' ').collect();
        let b: Vec<&str> = noisy.split(' ').collect();
        prop_assert_eq!(a.len(), b.len());
        let mut diffs = 0;
        for (x, y) in a.iter().zip(&b) {
            if x != y {
                diffs += 1;
                let dx = x.chars().count() as i64;
                let dy = y.chars().count() as i64;
                prop_assert!((dx - dy).abs() <= 1, "{x} → {y}");
            }
        }
        prop_assert!(diffs <= 1);
    }

    /// Keywordizing is a filter: every surviving token appeared in the
    /// original, in order.
    #[test]
    fn keywordize_is_an_ordered_subsequence(
        text in "[a-zA-Z ]{1,60}",
    ) {
        let reduced = keywordize(&text);
        let original: Vec<&str> = text.split_whitespace().collect();
        let kept: Vec<&str> = reduced.split_whitespace().collect();
        let mut cursor = 0usize;
        for k in kept {
            match original[cursor..].iter().position(|w| *w == k) {
                Some(p) => cursor += p + 1,
                None => prop_assert!(false, "token `{k}` not an ordered subsequence"),
            }
        }
    }

    /// Gibberish stays short, lowercase, and deterministic per seed.
    #[test]
    fn gibberish_is_bounded_and_deterministic(seed in 0u64..500) {
        let a = gibberish(&mut ChaCha8Rng::seed_from_u64(seed));
        let b = gibberish(&mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() >= 4 && a.len() <= 9);
        prop_assert!(a.chars().all(|c| c.is_ascii_lowercase()));
    }
}

#[test]
fn misspell_preserves_entity_recognisability_sometimes() {
    // The evaluation relies on misspellings *usually* breaking entity
    // recognition (that is the realism being injected); sanity-check the
    // mechanics on a known case rather than asserting a rate.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let noisy = misspell("dosage for tazarotene", &mut rng);
    assert_ne!(noisy, "dosage for tazarotene");
}
