//! Edge cases of the evaluation statistics: empty traffic, single-intent
//! traffic, and sampling extremes must not panic or divide by zero.

use obcs_agent::ReplyKind;
use obcs_sim::eval::{fig11, fig12, render_success_rows};
use obcs_sim::traffic::{SimOutcome, SimRecord};

fn record(intent: Option<&str>, correct: bool, down: bool) -> SimRecord {
    SimRecord {
        expected_intent: intent.map(str::to_string),
        utterance: "u".into(),
        detected_intent: intent.map(str::to_string),
        reply_kind: ReplyKind::Fulfilment,
        correct,
        feedback: down.then_some(obcs_agent::Feedback::ThumbsDown),
        turns: 1,
    }
}

#[test]
fn empty_outcome_is_safe() {
    let outcome = SimOutcome::default();
    assert_eq!(outcome.success_rate(), 0.0);
    assert_eq!(outcome.accuracy(), 0.0);
    let (rows, overall) = fig11(&outcome, 10);
    assert!(rows.is_empty());
    assert_eq!(overall, 0.0);
    // A 10% sample of nothing still keeps at least one slot guard.
    let (rows, sme, user) = fig12(&outcome, 0.1, 10, 0);
    assert!(rows.is_empty());
    assert_eq!(sme, 0.0);
    assert_eq!(user, 0.0);
}

#[test]
fn single_intent_traffic_produces_one_bar() {
    let outcome = SimOutcome {
        records: vec![
            record(Some("X"), true, false),
            record(Some("X"), true, false),
            record(Some("X"), false, true),
        ],
    };
    let (rows, overall) = fig11(&outcome, 10);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].interactions, 3);
    assert_eq!(rows[0].negative, 1);
    assert!((overall - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn fig12_full_sample_equals_whole_traffic() {
    let outcome =
        SimOutcome { records: (0..20).map(|i| record(Some("X"), i % 4 != 0, false)).collect() };
    let (_, sme, user) = fig12(&outcome, 0.999, 10, 1);
    assert!((sme - outcome.accuracy()).abs() < 0.05, "near-full sample ≈ population");
    assert_eq!(user, 1.0, "no thumbs-down in this traffic");
}

#[test]
fn top_k_truncation_keeps_most_frequent() {
    let mut records = Vec::new();
    for _ in 0..5 {
        records.push(record(Some("big"), true, false));
    }
    records.push(record(Some("small"), true, false));
    let outcome = SimOutcome { records };
    let (rows, _) = fig11(&outcome, 1);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].intent, "big");
}

#[test]
fn rendering_handles_zero_interactions_gracefully() {
    assert_eq!(render_success_rows(&[]), "");
}

#[test]
fn undetected_interactions_count_in_overall_but_not_bars() {
    let outcome = SimOutcome {
        records: vec![
            record(Some("X"), true, false),
            record(None, false, true), // gibberish, thumbs-down
        ],
    };
    let (rows, overall) = fig11(&outcome, 10);
    assert_eq!(rows.len(), 1, "no bar for undetected");
    assert!((overall - 0.5).abs() < 1e-12, "overall includes it");
}
