//! Reference-value tests for the evaluation metrics: hand-computed
//! precision/recall/F1 on small fixtures, so the Table 5 machinery is
//! anchored to externally checkable numbers.

use obcs_classifier::metrics::{evaluate, ConfusionMatrix};

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

#[test]
fn three_class_hand_computed() {
    // gold:     a a a b b c
    // predicted a b a b c c
    let gold = s(&["a", "a", "a", "b", "b", "c"]);
    let pred = s(&["a", "b", "a", "b", "c", "c"]);
    let r = evaluate(&gold, &pred);
    // a: tp=2 fp=0 fn=1 → p=1.000 r=0.667 f1=0.800
    // b: tp=1 fp=1 fn=1 → p=0.500 r=0.500 f1=0.500
    // c: tp=1 fp=1 fn=0 → p=0.500 r=1.000 f1=0.667
    let a = r.class("a").unwrap();
    assert!((a.precision - 1.0).abs() < 1e-12);
    assert!((a.recall - 2.0 / 3.0).abs() < 1e-12);
    assert!((a.f1 - 0.8).abs() < 1e-12);
    let b = r.class("b").unwrap();
    assert!((b.f1 - 0.5).abs() < 1e-12);
    let c = r.class("c").unwrap();
    assert!((c.f1 - 2.0 / 3.0).abs() < 1e-12);
    assert!((r.macro_f1 - (0.8 + 0.5 + 2.0 / 3.0) / 3.0).abs() < 1e-12);
    assert!((r.accuracy - 4.0 / 6.0).abs() < 1e-12);
}

#[test]
fn label_in_predictions_only_still_reported() {
    // The classifier hallucinated class "x" that never occurs in gold.
    let r = evaluate(&s(&["a", "a"]), &s(&["x", "a"]));
    let x = r.class("x").unwrap();
    assert_eq!(x.support, 0);
    assert_eq!(x.precision, 0.0);
    assert_eq!(x.f1, 0.0);
    // The per-class table lists every label, predicted or not (the
    // paper's per-intent table shape)…
    assert_eq!(r.per_class.len(), 2);
    // …but macro-F1 averages over gold-support classes only: the
    // hallucination costs class `a` recall (f1 = 2/3), it does not also
    // average in a structural zero for `x`.
    let a = r.class("a").unwrap();
    assert!((a.f1 - 2.0 / 3.0).abs() < 1e-12);
    assert!((r.macro_f1 - a.f1).abs() < 1e-12, "macro_f1 = {}", r.macro_f1);
}

#[test]
fn confusion_matrix_row_sums_equal_support() {
    let gold = s(&["a", "a", "a", "b", "b", "c"]);
    let pred = s(&["a", "b", "a", "b", "c", "c"]);
    let cm = ConfusionMatrix::compute(&gold, &pred);
    let report = evaluate(&gold, &pred);
    for (i, label) in cm.labels.iter().enumerate() {
        let row_sum: usize = cm.counts[i].iter().sum();
        assert_eq!(row_sum, report.class(label).unwrap().support, "{label}");
    }
    // Diagonal = true positives → accuracy.
    let diag: usize = (0..cm.labels.len()).map(|i| cm.counts[i][i]).sum();
    assert!((diag as f64 / gold.len() as f64 - report.accuracy).abs() < 1e-12);
}

#[test]
fn top_confusions_are_ordered() {
    let gold = s(&["a", "a", "a", "b"]);
    let pred = s(&["b", "b", "c", "b"]);
    let cm = ConfusionMatrix::compute(&gold, &pred);
    let top = cm.top_confusions(10);
    assert_eq!(top[0], ("a".into(), "b".into(), 2));
    assert_eq!(top[1], ("a".into(), "c".into(), 1));
    // Truncation respected.
    assert_eq!(cm.top_confusions(1).len(), 1);
}
