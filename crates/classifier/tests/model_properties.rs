//! Property-based tests over both classifier families and the evaluation
//! machinery.

use obcs_classifier::logreg::{LogReg, LogRegConfig};
use obcs_classifier::naive_bayes::{NaiveBayes, NaiveBayesConfig};
use obcs_classifier::split::stratified_split;
use obcs_classifier::{Classifier, Dataset};
use proptest::prelude::*;

fn dataset(labels: &[u8], texts: &[String]) -> Dataset {
    let mut d = Dataset::new();
    for (l, t) in labels.iter().zip(texts) {
        d.push(t.clone(), format!("c{}", l % 3));
    }
    d
}

proptest! {
    /// Stratified splitting partitions the dataset: no loss, no
    /// duplication, per-class counts preserved.
    #[test]
    fn split_partitions_dataset(
        labels in proptest::collection::vec(0u8..3, 4..60),
        frac in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let texts: Vec<String> = (0..labels.len()).map(|i| format!("text {i}")).collect();
        let data = dataset(&labels, &texts);
        let (train, test) = stratified_split(&data, frac, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        let mut all: Vec<&String> = train.texts.iter().chain(test.texts.iter()).collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), data.len(), "no duplicates, no losses");
        // Per-class counts preserved across the split.
        for label in data.label_set() {
            let total = data.labels.iter().filter(|l| l.as_str() == label).count();
            let split_total = train.labels.iter().filter(|l| l.as_str() == label).count()
                + test.labels.iter().filter(|l| l.as_str() == label).count();
            prop_assert_eq!(total, split_total);
        }
    }

    /// Both models train without panicking on arbitrary corpora, and the
    /// training data itself is classified mostly correctly by NB when the
    /// classes use disjoint vocabulary.
    #[test]
    fn disjoint_vocabulary_is_learned(n_per_class in 2usize..8) {
        let mut data = Dataset::new();
        for i in 0..n_per_class {
            data.push(format!("alpha bravo charlie {i}"), "a");
            data.push(format!("delta echo foxtrot {i}"), "b");
            data.push(format!("golf hotel india {i}"), "c");
        }
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        let lr = LogReg::train(&data, LogRegConfig { epochs: 20, ..Default::default() });
        for (text, label) in data.iter() {
            prop_assert_eq!(nb.predict(text).label, label.to_string());
            prop_assert_eq!(lr.predict(text).label, label.to_string());
        }
    }

    /// Prediction confidence is a probability and predict_all is a
    /// distribution over exactly the trained labels.
    #[test]
    fn predictions_are_distributions(probe in "\\PC{0,40}") {
        let mut data = Dataset::new();
        data.push("one two three", "x");
        data.push("four five six", "y");
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        let all = nb.predict_all(&probe);
        prop_assert_eq!(all.len(), 2);
        let total: f64 = all.iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(all.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
    }
}

#[test]
fn logreg_and_nb_agree_on_easy_data() {
    let mut data = Dataset::new();
    for t in ["precautions for aspirin", "precautions for ibuprofen", "drug precautions"] {
        data.push(t, "precautions");
    }
    for t in ["what treats fever", "drugs that treat acne", "treatment for headache"] {
        data.push(t, "treatment");
    }
    let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
    let lr = LogReg::train(&data, LogRegConfig::default());
    for probe in ["precautions for tylenol", "what treats migraine"] {
        assert_eq!(nb.predict(probe).label, lr.predict(probe).label, "probe: {probe}");
    }
}
