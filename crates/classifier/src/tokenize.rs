//! Tokenization for intent classification: lowercase alphanumeric tokens
//! with optional bigram features.

/// Splits text into lowercase tokens of letters/digits; everything else is
/// a separator. Apostrophes inside words are dropped (`don't` → `dont`) so
/// contractions don't fragment.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if ch == '\'' || ch == '’' {
            // skip – joins contractions
        } else if !current.is_empty() {
            tokens.push(light_stem(std::mem::take(&mut current)));
        }
    }
    if !current.is_empty() {
        tokens.push(light_stem(current));
    }
    tokens
}

/// Strips a single plural `s` from tokens longer than 3 characters (but
/// not `ss` endings): `risks` -> `risk`, `class` -> `class`. Crude, but
/// applied identically at train and predict time, which is what matters.
fn light_stem(token: String) -> String {
    if token.len() > 3 && token.ends_with('s') && !token.ends_with("ss") {
        let mut t = token;
        t.pop();
        t
    } else {
        token
    }
}

/// Produces unigram + bigram feature strings. Bigrams are joined with `_`
/// and let the classifier distinguish e.g. "dose adjustment" from "dosage".
pub fn features(text: &str) -> Vec<String> {
    let unigrams = tokenize(text);
    let mut feats = Vec::with_capacity(unigrams.len() * 2);
    for w in unigrams.windows(2) {
        feats.push(format!("{}_{}", w[0], w[1]));
    }
    feats.extend(unigrams);
    feats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Show me the Precautions for Aspirin?"),
            vec!["show", "me", "the", "precaution", "for", "aspirin"]
        );
    }

    #[test]
    fn punctuation_and_numbers() {
        assert_eq!(tokenize("0.05% gel, 12 years!"), vec!["0", "05", "gel", "12", "year"]);
    }

    #[test]
    fn contractions_join() {
        assert_eq!(tokenize("don't what's"), vec!["dont", "what"]);
        assert_eq!(tokenize("it’s"), vec!["its"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Naïve Ärzte"), vec!["naïve", "ärzte"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!?---").is_empty());
    }

    #[test]
    fn features_include_bigrams() {
        let f = features("dose adjustment aspirin");
        assert!(f.contains(&"dose_adjustment".to_string()));
        assert!(f.contains(&"adjustment_aspirin".to_string()));
        assert!(f.contains(&"dose".to_string()));
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn single_token_has_no_bigrams() {
        assert_eq!(features("aspirin"), vec!["aspirin"]);
    }
}
