//! Vocabulary construction and TF-IDF feature vectors.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::tokenize::features;

/// A vocabulary mapping feature strings to indices, with document
/// frequencies for IDF weighting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    doc_freq: Vec<usize>,
    documents: usize,
}

impl Vocabulary {
    /// Builds a vocabulary over a corpus, keeping features that appear in
    /// at least `min_df` documents.
    pub fn build<'a>(corpus: impl Iterator<Item = &'a str>, min_df: usize) -> Self {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut documents = 0usize;
        for doc in corpus {
            documents += 1;
            let mut feats = features(doc);
            feats.sort_unstable();
            feats.dedup();
            for f in feats {
                *df.entry(f).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(String, usize)> =
            df.into_iter().filter(|&(_, c)| c >= min_df.max(1)).collect();
        // Deterministic index assignment.
        kept.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut index = HashMap::with_capacity(kept.len());
        let mut doc_freq = Vec::with_capacity(kept.len());
        for (i, (feat, c)) in kept.into_iter().enumerate() {
            index.insert(feat, i);
            doc_freq.push(c);
        }
        Vocabulary { index, doc_freq, documents }
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Index of a feature if in the vocabulary.
    pub fn get(&self, feature: &str) -> Option<usize> {
        self.index.get(feature).copied()
    }

    /// Smoothed inverse document frequency of feature `i`.
    pub fn idf(&self, i: usize) -> f64 {
        ((1.0 + self.documents as f64) / (1.0 + self.doc_freq[i] as f64)).ln() + 1.0
    }

    /// Sparse raw term counts of a text, as (feature index, count).
    pub fn counts(&self, text: &str) -> Vec<(usize, f64)> {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for f in features(text) {
            if let Some(i) = self.get(&f) {
                *counts.entry(i).or_insert(0.0) += 1.0;
            }
        }
        let mut v: Vec<(usize, f64)> = counts.into_iter().collect();
        v.sort_unstable_by_key(|&(i, _)| i);
        v
    }

    /// Sparse L2-normalised TF-IDF vector of a text.
    pub fn tfidf(&self, text: &str) -> Vec<(usize, f64)> {
        let mut v = self.counts(text);
        for (i, w) in v.iter_mut() {
            *w *= self.idf(*i);
        }
        let norm: f64 = v.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in v.iter_mut() {
                *w /= norm;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "show me precautions for aspirin",
            "show me dosage for aspirin",
            "what drugs treat fever",
        ]
    }

    #[test]
    fn build_is_deterministic() {
        let v1 = Vocabulary::build(corpus().into_iter(), 1);
        let v2 = Vocabulary::build(corpus().into_iter(), 1);
        assert_eq!(v1.len(), v2.len());
        assert_eq!(v1.get("aspirin"), v2.get("aspirin"));
    }

    #[test]
    fn min_df_prunes_rare_features() {
        let v = Vocabulary::build(corpus().into_iter(), 2);
        assert!(v.get("aspirin").is_some(), "appears in 2 docs");
        assert!(v.get("fever").is_none(), "appears in 1 doc");
    }

    #[test]
    fn idf_downweights_common_features() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        let common = v.get("show").unwrap(); // 2 docs
        let rare = v.get("fever").unwrap(); // 1 doc
        assert!(v.idf(rare) > v.idf(common));
    }

    #[test]
    fn counts_accumulate_repeats() {
        let v = Vocabulary::build(["a a b"].into_iter(), 1);
        let c = v.counts("a a a b");
        let a_idx = v.get("a").unwrap();
        assert!(c.contains(&(a_idx, 3.0)));
    }

    #[test]
    fn tfidf_is_unit_norm() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        let t = v.tfidf("show me precautions for aspirin");
        let norm: f64 = t.iter().map(|&(_, w)| w * w).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oov_text_yields_empty_vector() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        assert!(v.tfidf("zzz qqq").is_empty());
    }
}
