//! Vocabulary construction and TF-IDF feature vectors.
//!
//! Vectorization is the inner loop of both classifiers, so the vocabulary
//! caches its IDF weights at build time and exposes a batch
//! [`Vocabulary::vectorize_corpus`] API producing a sparse CSR matrix:
//! training code vectorizes the corpus exactly once and then iterates over
//! contiguous index/value slices instead of re-tokenizing text.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::tokenize::features;

/// A vocabulary mapping feature strings to indices, with document
/// frequencies for IDF weighting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    doc_freq: Vec<usize>,
    documents: usize,
    /// Smoothed IDF per feature, cached at build time.
    idf: Vec<f64>,
}

/// How [`Vocabulary::vectorize_corpus`] weights features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureWeighting {
    /// Raw term counts (Naive Bayes).
    Counts,
    /// L2-normalised TF-IDF (logistic regression).
    Tfidf,
}

impl Vocabulary {
    /// Builds a vocabulary over a corpus, keeping features that appear in
    /// at least `min_df` documents.
    pub fn build<'a>(corpus: impl Iterator<Item = &'a str>, min_df: usize) -> Self {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut documents = 0usize;
        for doc in corpus {
            documents += 1;
            let mut feats = features(doc);
            feats.sort_unstable();
            feats.dedup();
            for f in feats {
                *df.entry(f).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(String, usize)> =
            df.into_iter().filter(|&(_, c)| c >= min_df.max(1)).collect();
        // Deterministic index assignment.
        kept.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut index = HashMap::with_capacity(kept.len());
        let mut doc_freq = Vec::with_capacity(kept.len());
        for (i, (feat, c)) in kept.into_iter().enumerate() {
            index.insert(feat, i);
            doc_freq.push(c);
        }
        let idf = doc_freq
            .iter()
            .map(|&c| ((1.0 + documents as f64) / (1.0 + c as f64)).ln() + 1.0)
            .collect();
        Vocabulary { index, doc_freq, documents, idf }
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Index of a feature if in the vocabulary.
    pub fn get(&self, feature: &str) -> Option<usize> {
        self.index.get(feature).copied()
    }

    /// Smoothed inverse document frequency of feature `i` (cached).
    pub fn idf(&self, i: usize) -> f64 {
        self.idf[i]
    }

    /// Sparse raw term counts of a text, as (feature index, count).
    /// Sort + run-length-encode; no per-call hash map.
    pub fn counts(&self, text: &str) -> Vec<(usize, f64)> {
        let mut idx: Vec<usize> = features(text).into_iter().filter_map(|f| self.get(&f)).collect();
        idx.sort_unstable();
        let mut v: Vec<(usize, f64)> = Vec::with_capacity(idx.len());
        for i in idx {
            match v.last_mut() {
                Some(last) if last.0 == i => last.1 += 1.0,
                _ => v.push((i, 1.0)),
            }
        }
        v
    }

    /// Sparse L2-normalised TF-IDF vector of a text.
    pub fn tfidf(&self, text: &str) -> Vec<(usize, f64)> {
        let mut v = self.counts(text);
        tfidf_in_place(&self.idf, &mut v);
        v
    }

    /// The pre-optimisation vectorizer, kept verbatim: rebuilds a hash map
    /// and re-evaluates the IDF formula on every call. Produces bitwise
    /// the same vector as [`Vocabulary::tfidf`] (a test enforces it); used
    /// by `LogReg::train_scan` as the "before" side of `repro perf`.
    #[doc(hidden)]
    pub fn tfidf_scan(&self, text: &str) -> Vec<(usize, f64)> {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for f in features(text) {
            if let Some(i) = self.get(&f) {
                *counts.entry(i).or_insert(0.0) += 1.0;
            }
        }
        let mut v: Vec<(usize, f64)> = counts.into_iter().collect();
        v.sort_unstable_by_key(|&(i, _)| i);
        for (i, w) in v.iter_mut() {
            *w *= ((1.0 + self.documents as f64) / (1.0 + self.doc_freq[*i] as f64)).ln() + 1.0;
        }
        let norm: f64 = v.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in v.iter_mut() {
                *w /= norm;
            }
        }
        v
    }

    /// Vectorizes a whole corpus into one sparse CSR matrix. Both
    /// classifiers train from this: text is tokenized exactly once and the
    /// SGD/counting loops run over contiguous slices.
    pub fn vectorize_corpus<'a>(
        &self,
        corpus: impl Iterator<Item = &'a str>,
        weighting: FeatureWeighting,
    ) -> CsrMatrix {
        let mut m = CsrMatrix::new();
        for doc in corpus {
            let mut row = self.counts(doc);
            if weighting == FeatureWeighting::Tfidf {
                tfidf_in_place(&self.idf, &mut row);
            }
            m.push_row(&row);
        }
        m
    }
}

/// Scales a sorted sparse count vector by IDF and L2-normalises it.
fn tfidf_in_place(idf: &[f64], v: &mut [(usize, f64)]) {
    for (i, w) in v.iter_mut() {
        *w *= idf[*i];
    }
    let norm: f64 = v.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    if norm > 0.0 {
        for (_, w) in v.iter_mut() {
            *w /= norm;
        }
    }
}

/// A compressed-sparse-row matrix: row `i` occupies
/// `indices[indptr[i]..indptr[i+1]]` / `values[..]`, column indices sorted
/// ascending within each row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrMatrix {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl Default for CsrMatrix {
    fn default() -> Self {
        CsrMatrix::new()
    }
}

impl CsrMatrix {
    pub fn new() -> Self {
        CsrMatrix { indptr: vec![0], indices: Vec::new(), values: Vec::new() }
    }

    /// Appends a row given as sorted (feature index, value) pairs.
    pub fn push_row(&mut self, row: &[(usize, f64)]) {
        for &(i, w) in row {
            self.indices.push(i as u32);
            self.values.push(w);
        }
        self.indptr.push(self.indices.len());
    }

    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row `i` as parallel (column indices, values) slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[a..b], &self.values[a..b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "show me precautions for aspirin",
            "show me dosage for aspirin",
            "what drugs treat fever",
        ]
    }

    #[test]
    fn build_is_deterministic() {
        let v1 = Vocabulary::build(corpus().into_iter(), 1);
        let v2 = Vocabulary::build(corpus().into_iter(), 1);
        assert_eq!(v1.len(), v2.len());
        assert_eq!(v1.get("aspirin"), v2.get("aspirin"));
    }

    #[test]
    fn min_df_prunes_rare_features() {
        let v = Vocabulary::build(corpus().into_iter(), 2);
        assert!(v.get("aspirin").is_some(), "appears in 2 docs");
        assert!(v.get("fever").is_none(), "appears in 1 doc");
    }

    #[test]
    fn idf_downweights_common_features() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        let common = v.get("show").unwrap(); // 2 docs
        let rare = v.get("fever").unwrap(); // 1 doc
        assert!(v.idf(rare) > v.idf(common));
    }

    #[test]
    fn cached_idf_matches_formula() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        let i = v.get("show").unwrap();
        let expect = ((1.0 + v.documents as f64) / (1.0 + v.doc_freq[i] as f64)).ln() + 1.0;
        assert!((v.idf(i) - expect).abs() < 1e-15);
    }

    #[test]
    fn counts_accumulate_repeats() {
        let v = Vocabulary::build(["a a b"].into_iter(), 1);
        let c = v.counts("a a a b");
        let a_idx = v.get("a").unwrap();
        assert!(c.contains(&(a_idx, 3.0)));
    }

    #[test]
    fn counts_are_sorted_by_index() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        let c = v.counts("what drugs treat fever show me");
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn tfidf_is_unit_norm() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        let t = v.tfidf("show me precautions for aspirin");
        let norm: f64 = t.iter().map(|&(_, w)| w * w).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tfidf_scan_is_a_bitwise_oracle() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        for doc in corpus().into_iter().chain(["show show me aspirin zzz", ""]) {
            assert_eq!(v.tfidf(doc), v.tfidf_scan(doc), "{doc:?}");
        }
    }

    #[test]
    fn oov_text_yields_empty_vector() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        assert!(v.tfidf("zzz qqq").is_empty());
    }

    #[test]
    fn vectorize_corpus_matches_per_text_vectors() {
        let v = Vocabulary::build(corpus().into_iter(), 1);
        for weighting in [FeatureWeighting::Counts, FeatureWeighting::Tfidf] {
            let m = v.vectorize_corpus(corpus().into_iter(), weighting);
            assert_eq!(m.rows(), corpus().len());
            for (r, doc) in corpus().into_iter().enumerate() {
                let expect = match weighting {
                    FeatureWeighting::Counts => v.counts(doc),
                    FeatureWeighting::Tfidf => v.tfidf(doc),
                };
                let (idx, vals) = m.row(r);
                assert_eq!(idx.len(), expect.len());
                for (k, &(i, w)) in expect.iter().enumerate() {
                    assert_eq!(idx[k] as usize, i);
                    assert!((vals[k] - w).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn csr_empty_rows_are_representable() {
        let mut m = CsrMatrix::new();
        m.push_row(&[]);
        m.push_row(&[(2, 1.0)]);
        m.push_row(&[]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 1);
        assert!(m.row(0).0.is_empty());
        assert_eq!(m.row(1).0, &[2]);
        assert!(m.row(2).0.is_empty());
    }
}
