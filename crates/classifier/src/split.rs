//! Stratified train/test splitting with a seeded RNG.
//!
//! The paper's evaluation (§7.1) splits the augmented example set into
//! training and test sets whose per-intent distribution mirrors real usage;
//! stratification keeps every intent represented in both splits.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::Dataset;

/// Splits a dataset into (train, test) with `test_fraction` of each class
/// in the test set (at least one test example per class with ≥ 2 examples).
pub fn stratified_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1), got {test_fraction}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Group example indices per label, in encounter order.
    let labels = data.label_set();
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for label in labels {
        let mut indices: Vec<usize> = data
            .labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.as_str() == label)
            .map(|(i, _)| i)
            .collect();
        indices.shuffle(&mut rng);
        let mut n_test = (indices.len() as f64 * test_fraction).round() as usize;
        if indices.len() >= 2 && test_fraction > 0.0 {
            n_test = n_test.clamp(1, indices.len() - 1);
        } else {
            n_test = n_test.min(indices.len().saturating_sub(1));
        }
        for (k, &i) in indices.iter().enumerate() {
            if k < n_test {
                test.push(data.texts[i].clone(), data.labels[i].clone());
            } else {
                train.push(data.texts[i].clone(), data.labels[i].clone());
            }
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(per_class: usize) -> Dataset {
        let mut d = Dataset::new();
        for label in ["a", "b", "c"] {
            for i in 0..per_class {
                d.push(format!("{label} example {i}"), label);
            }
        }
        d
    }

    #[test]
    fn split_sizes_approximate_fraction() {
        let d = data(10);
        let (train, test) = stratified_split(&d, 0.3, 42);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 9); // 3 per class
        assert_eq!(train.len(), 21);
    }

    #[test]
    fn every_class_in_both_splits() {
        let d = data(4);
        let (train, test) = stratified_split(&d, 0.25, 1);
        for label in ["a", "b", "c"] {
            assert!(train.labels.iter().any(|l| l == label));
            assert!(test.labels.iter().any(|l| l == label));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let d = data(10);
        let (t1, e1) = stratified_split(&d, 0.3, 5);
        let (t2, e2) = stratified_split(&d, 0.3, 5);
        assert_eq!(t1.texts, t2.texts);
        assert_eq!(e1.texts, e2.texts);
        let (t3, _) = stratified_split(&d, 0.3, 6);
        assert!(t1.texts != t3.texts, "different seed should differ");
    }

    #[test]
    fn singleton_class_stays_in_train() {
        let mut d = Dataset::new();
        d.push("only one", "solo");
        for i in 0..5 {
            d.push(format!("x {i}"), "multi");
        }
        let (train, test) = stratified_split(&d, 0.4, 0);
        assert!(train.labels.iter().any(|l| l == "solo"));
        assert!(!test.labels.iter().any(|l| l == "solo"));
    }

    #[test]
    fn zero_fraction_puts_all_in_train() {
        let d = data(5);
        let (train, test) = stratified_split(&d, 0.0, 0);
        assert_eq!(train.len(), d.len());
        assert!(test.is_empty());
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn invalid_fraction_panics() {
        stratified_split(&data(2), 1.0, 0);
    }

    #[test]
    fn no_example_leaks_between_splits() {
        let d = data(10);
        let (train, test) = stratified_split(&d, 0.3, 9);
        for t in &test.texts {
            assert!(!train.texts.contains(t));
        }
    }
}
