//! # obcs-classifier
//!
//! From-scratch text classification for intent detection. The paper uses
//! IBM Watson Assistant's natural-language classifier as a black box: it is
//! trained on the examples the bootstrapper generates and returns, for each
//! user utterance, the detected intent with a confidence score. This crate
//! provides the equivalent component:
//!
//! * a text pipeline — tokenizer with unigram+bigram features and TF-IDF
//!   weighting ([`tokenize`], [`features`]),
//! * a multinomial Naive Bayes classifier ([`naive_bayes`]) and a
//!   one-vs-rest logistic-regression classifier trained with SGD
//!   ([`logreg`]), both exposing calibrated-ish confidence scores,
//! * stratified train/test splitting ([`split`]) and evaluation metrics —
//!   per-class precision/recall/F1, macro/micro averages, confusion matrix
//!   ([`metrics`]) — used to reproduce the paper's Table 5.
//!
//! ## Example
//!
//! ```
//! use obcs_classifier::{Dataset, naive_bayes::NaiveBayes, Classifier};
//!
//! let mut data = Dataset::new();
//! data.push("show me precautions for aspirin", "precautions");
//! data.push("give me the precautions for ibuprofen", "precautions");
//! data.push("what drugs treat fever", "treatment");
//! data.push("which drug treats headache", "treatment");
//! let model = NaiveBayes::train(&data, Default::default());
//! let pred = model.predict("precautions for tylenol");
//! assert_eq!(pred.label, "precautions");
//! assert!(pred.confidence > 0.5);
//! ```
//!
//! Crate role: DESIGN.md §2; training-speed notes: §9; traced prediction
//! (`predict_traced`): §10.

pub mod features;
pub mod logreg;
pub mod metrics;
pub mod naive_bayes;
pub mod split;
pub mod tokenize;

use serde::{Deserialize, Serialize};

/// A labelled text dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub texts: Vec<String>,
    pub labels: Vec<String>,
}

impl Dataset {
    pub fn new() -> Self {
        Dataset::default()
    }

    pub fn push(&mut self, text: impl Into<String>, label: impl Into<String>) {
        self.texts.push(text.into());
        self.labels.push(label.into());
    }

    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Distinct labels in first-appearance order.
    pub fn label_set(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.labels.iter().filter(|l| seen.insert(l.as_str())).map(String::as_str).collect()
    }

    /// Iterates `(text, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.texts.iter().map(String::as_str).zip(self.labels.iter().map(String::as_str))
    }

    /// Appends all examples of another dataset.
    pub fn extend_from(&mut self, other: &Dataset) {
        self.texts.extend(other.texts.iter().cloned());
        self.labels.extend(other.labels.iter().cloned());
    }
}

/// A prediction: the winning label and its confidence in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    pub label: String,
    pub confidence: f64,
}

/// Common interface of the intent classifiers.
pub trait Classifier {
    /// Predicts the most likely label with a confidence score. Returns
    /// a prediction with empty label and zero confidence for a model
    /// trained on no data.
    fn predict(&self, text: &str) -> Prediction;

    /// Full (label, probability) distribution, descending by probability.
    fn predict_all(&self, text: &str) -> Vec<(String, f64)>;

    /// Like [`Classifier::predict`], recording a
    /// [`classify`](obcs_telemetry::stage::CLASSIFY) span on `rec`
    /// (see DESIGN.md §10).
    fn predict_traced(&self, text: &str, rec: &dyn obcs_telemetry::Recorder) -> Prediction {
        let _span = obcs_telemetry::span(rec, obcs_telemetry::stage::CLASSIFY);
        self.predict(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_basics() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.push("a", "x");
        d.push("b", "y");
        d.push("c", "x");
        assert_eq!(d.len(), 3);
        assert_eq!(d.label_set(), vec!["x", "y"]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs[2], ("c", "x"));
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Dataset::new();
        a.push("a", "x");
        let mut b = Dataset::new();
        b.push("b", "y");
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.labels, vec!["x", "y"]);
    }
}
