//! Evaluation metrics: per-class precision/recall/F1, macro and micro
//! averages, and a confusion matrix — the machinery behind the paper's
//! Table 5 F1 column.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Precision/recall/F1 for one class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Number of gold examples of this class.
    pub support: usize,
}

/// Evaluation report over a test set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Per-class metrics keyed by label, sorted by label for determinism.
    pub per_class: Vec<(String, ClassMetrics)>,
    pub macro_f1: f64,
    pub micro_f1: f64,
    pub accuracy: f64,
    pub total: usize,
}

impl Report {
    /// Metrics for one label.
    pub fn class(&self, label: &str) -> Option<ClassMetrics> {
        self.per_class.iter().find(|(l, _)| l == label).map(|&(_, m)| m)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>9} {:>9} {:>9} {:>8}\n",
            "intent", "precision", "recall", "F1", "support"
        ));
        for (label, m) in &self.per_class {
            out.push_str(&format!(
                "{:<40} {:>9.2} {:>9.2} {:>9.2} {:>8}\n",
                label, m.precision, m.recall, m.f1, m.support
            ));
        }
        out.push_str(&format!(
            "macro F1 {:.3}  micro F1 {:.3}  accuracy {:.3}  n={}\n",
            self.macro_f1, self.micro_f1, self.accuracy, self.total
        ));
        out
    }
}

/// Computes the report from parallel gold/predicted label slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn evaluate(gold: &[String], predicted: &[String]) -> Report {
    assert_eq!(gold.len(), predicted.len(), "gold/predicted length mismatch");
    let mut labels: Vec<&str> = gold.iter().chain(predicted.iter()).map(String::as_str).collect();
    labels.sort_unstable();
    labels.dedup();

    let mut tp: HashMap<&str, usize> = HashMap::new();
    let mut fp: HashMap<&str, usize> = HashMap::new();
    let mut fnc: HashMap<&str, usize> = HashMap::new();
    let mut support: HashMap<&str, usize> = HashMap::new();
    let mut correct = 0usize;
    for (g, p) in gold.iter().zip(predicted) {
        *support.entry(g).or_insert(0) += 1;
        if g == p {
            *tp.entry(g).or_insert(0) += 1;
            correct += 1;
        } else {
            *fp.entry(p).or_insert(0) += 1;
            *fnc.entry(g).or_insert(0) += 1;
        }
    }

    let mut per_class = Vec::with_capacity(labels.len());
    let mut macro_sum = 0.0;
    let mut macro_classes = 0usize;
    for label in &labels {
        let tp = *tp.get(label).unwrap_or(&0) as f64;
        let fp = *fp.get(label).unwrap_or(&0) as f64;
        let fnc = *fnc.get(label).unwrap_or(&0) as f64;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fnc > 0.0 { tp / (tp + fnc) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        let class_support = *support.get(label).unwrap_or(&0);
        // Standard macro-F1 averages over classes that exist in the gold
        // set. Predicted-only (hallucinated) labels still get a per-class
        // row — their false positives already penalise the gold classes'
        // precision — but averaging in their structural 0.0 F1 would
        // deflate the macro score below the paper's Table 5 definition.
        if class_support > 0 {
            macro_sum += f1;
            macro_classes += 1;
        }
        per_class.push((
            label.to_string(),
            ClassMetrics { precision, recall, f1, support: class_support },
        ));
    }
    let total = gold.len();
    let accuracy = if total > 0 { correct as f64 / total as f64 } else { 0.0 };
    // Micro F1 over single-label classification equals accuracy.
    Report {
        per_class,
        macro_f1: if macro_classes == 0 { 0.0 } else { macro_sum / macro_classes as f64 },
        micro_f1: accuracy,
        accuracy,
        total,
    }
}

/// A confusion matrix with deterministic label ordering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    pub labels: Vec<String>,
    /// `counts[gold][predicted]`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    pub fn compute(gold: &[String], predicted: &[String]) -> Self {
        assert_eq!(gold.len(), predicted.len());
        let mut labels: Vec<String> = gold.iter().chain(predicted.iter()).cloned().collect();
        labels.sort();
        labels.dedup();
        let index: HashMap<&str, usize> =
            labels.iter().enumerate().map(|(i, l)| (l.as_str(), i)).collect();
        let mut counts = vec![vec![0usize; labels.len()]; labels.len()];
        for (g, p) in gold.iter().zip(predicted) {
            counts[index[g.as_str()]][index[p.as_str()]] += 1;
        }
        ConfusionMatrix { labels, counts }
    }

    /// The most confused (gold, predicted, count) pairs, descending.
    pub fn top_confusions(&self, n: usize) -> Vec<(String, String, usize)> {
        let mut pairs = Vec::new();
        for (g, row) in self.counts.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                if g != p && c > 0 {
                    pairs.push((self.labels[g].clone(), self.labels[p].clone(), c));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn perfect_predictions() {
        let gold = s(&["a", "b", "a"]);
        let r = evaluate(&gold, &gold);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert_eq!(r.class("a").unwrap().support, 2);
    }

    #[test]
    fn known_f1_values() {
        // gold: a a b b; pred: a b b b
        // class a: tp=1 fp=0 fn=1 → p=1, r=0.5, f1=2/3
        // class b: tp=2 fp=1 fn=0 → p=2/3, r=1, f1=0.8
        let r = evaluate(&s(&["a", "a", "b", "b"]), &s(&["a", "b", "b", "b"]));
        let a = r.class("a").unwrap();
        let b = r.class("b").unwrap();
        assert!((a.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((b.f1 - 0.8).abs() < 1e-12);
        assert!((r.macro_f1 - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
        assert!((r.accuracy - 0.75).abs() < 1e-12);
        assert_eq!(r.micro_f1, r.accuracy);
    }

    #[test]
    fn class_never_predicted_has_zero_precision() {
        let r = evaluate(&s(&["a", "a"]), &s(&["b", "b"]));
        let a = r.class("a").unwrap();
        assert_eq!(a.precision, 0.0);
        assert_eq!(a.recall, 0.0);
        assert_eq!(a.f1, 0.0);
    }

    #[test]
    fn macro_f1_ignores_predicted_only_classes() {
        // gold = [a, a], pred = [a, b]: class a has f1 = 2/3; class b has
        // zero gold support (hallucinated prediction). Standard macro-F1
        // averages over gold classes only → 2/3, not (2/3 + 0)/2 = 1/3.
        let r = evaluate(&s(&["a", "a"]), &s(&["a", "b"]));
        assert!((r.macro_f1 - 2.0 / 3.0).abs() < 1e-12, "macro_f1 = {}", r.macro_f1);
        // The hallucinated class still appears per-class, with support 0.
        let b = r.class("b").unwrap();
        assert_eq!(b.support, 0);
        assert_eq!(b.f1, 0.0);
    }

    #[test]
    fn empty_input() {
        let r = evaluate(&[], &[]);
        assert_eq!(r.total, 0);
        assert_eq!(r.accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        evaluate(&s(&["a"]), &s(&[]));
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::compute(&s(&["a", "a", "b"]), &s(&["a", "b", "b"]));
        assert_eq!(cm.labels, vec!["a", "b"]);
        assert_eq!(cm.counts[0], vec![1, 1]); // gold a → pred a:1, b:1
        assert_eq!(cm.counts[1], vec![0, 1]);
        assert_eq!(cm.top_confusions(5), vec![("a".into(), "b".into(), 1)]);
    }

    #[test]
    fn report_renders() {
        let r = evaluate(&s(&["a", "b"]), &s(&["a", "b"]));
        let txt = r.render();
        assert!(txt.contains("precision"));
        assert!(txt.contains("macro F1 1.000"));
    }
}
