//! One-vs-rest logistic regression trained with mini-batch SGD over TF-IDF
//! features. Slower to train than Naive Bayes but usually better calibrated
//! on the bootstrapped training distributions; the `repro` harness compares
//! both (classifier ablation).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::features::Vocabulary;
use crate::naive_bayes::softmax;
use crate::{Classifier, Dataset, Prediction};

/// Hyper-parameters for logistic-regression training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogRegConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    pub min_df: usize,
    /// RNG seed for example shuffling.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig { epochs: 30, learning_rate: 0.5, l2: 1e-4, min_df: 1, seed: 7 }
    }
}

/// A trained one-vs-rest logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogReg {
    vocab: Vocabulary,
    labels: Vec<String>,
    /// `weights[label][feature]`.
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

impl LogReg {
    /// Trains one binary logistic regression per label (one-vs-rest).
    pub fn train(data: &Dataset, config: LogRegConfig) -> Self {
        let vocab = Vocabulary::build(data.texts.iter().map(String::as_str), config.min_df);
        let labels: Vec<String> = data.label_set().into_iter().map(str::to_string).collect();
        let k = labels.len();
        let v = vocab.len();
        let vectors: Vec<Vec<(usize, f64)>> = data.texts.iter().map(|t| vocab.tfidf(t)).collect();
        let label_ids: Vec<usize> = data
            .labels
            .iter()
            .map(|l| labels.iter().position(|x| x == l).expect("label in set"))
            .collect();

        let mut weights = vec![vec![0.0f64; v]; k];
        let mut bias = vec![0.0f64; k];
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            // Simple 1/(1+epoch) learning-rate decay.
            let lr = config.learning_rate / (1.0 + epoch as f64 * 0.1);
            for &i in &order {
                let x = &vectors[i];
                let yi = label_ids[i];
                for li in 0..k {
                    let target = if li == yi { 1.0 } else { 0.0 };
                    let z = bias[li] + x.iter().map(|&(f, w)| w * weights[li][f]).sum::<f64>();
                    let p = sigmoid(z);
                    let err = p - target;
                    bias[li] -= lr * err;
                    let wl = &mut weights[li];
                    for &(f, w) in x {
                        wl[f] -= lr * (err * w + config.l2 * wl[f]);
                    }
                }
            }
        }
        LogReg { vocab, labels, weights, bias }
    }

    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn scores(&self, text: &str) -> Vec<f64> {
        let x = self.vocab.tfidf(text);
        (0..self.labels.len())
            .map(|li| self.bias[li] + x.iter().map(|&(f, w)| w * self.weights[li][f]).sum::<f64>())
            .collect()
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogReg {
    fn predict(&self, text: &str) -> Prediction {
        self.predict_all(text)
            .into_iter()
            .next()
            .map(|(label, confidence)| Prediction { label, confidence })
            .unwrap_or(Prediction { label: String::new(), confidence: 0.0 })
    }

    fn predict_all(&self, text: &str) -> Vec<(String, f64)> {
        let probs = softmax(&self.scores(text));
        let mut out: Vec<(String, f64)> = self.labels.iter().cloned().zip(probs).collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("probabilities are finite").then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new();
        for t in [
            "show me the precautions for aspirin",
            "give me the precautions for ibuprofen",
            "tell me about precautions for tylenol",
        ] {
            d.push(t, "precautions");
        }
        for t in [
            "what drugs treat fever",
            "which drug treats psoriasis",
            "show me drugs that treat acne",
        ] {
            d.push(t, "treatment");
        }
        d
    }

    #[test]
    fn learns_separable_intents() {
        let m = LogReg::train(&data(), LogRegConfig::default());
        assert_eq!(m.predict("precautions for calcium").label, "precautions");
        assert_eq!(m.predict("what drug treats migraine").label, "treatment");
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let m1 = LogReg::train(&data(), LogRegConfig::default());
        let m2 = LogReg::train(&data(), LogRegConfig::default());
        let a = m1.predict_all("drugs that treat fever");
        let b = m2.predict_all("drugs that treat fever");
        assert_eq!(a, b);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = LogReg::train(&data(), LogRegConfig::default());
        let all = m.predict_all("precautions for x");
        let total: f64 = all.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_model_is_graceful() {
        let m = LogReg::train(&Dataset::new(), LogRegConfig::default());
        let p = m.predict("anything");
        assert!(p.label.is_empty());
    }

    #[test]
    fn sigmoid_is_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-100);
    }
}
