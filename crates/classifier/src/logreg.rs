//! One-vs-rest logistic regression trained with SGD over TF-IDF features.
//! Slower to train than Naive Bayes but usually better calibrated on the
//! bootstrapped training distributions; the `repro` harness compares both
//! (classifier ablation).
//!
//! ## Hot-path layout
//!
//! Training is the dominant offline cost, so it is laid out for speed
//! without giving up determinism:
//!
//! - the corpus is tokenized and vectorized exactly **once** into a sparse
//!   CSR matrix ([`Vocabulary::vectorize_corpus`]); the SGD loop runs over
//!   contiguous index/value slices, never over text;
//! - the per-epoch shuffle orders are drawn **up front** from the seeded
//!   RNG, which decouples the classes from the RNG stream;
//! - the one-vs-rest binary problems are independent, so classes are
//!   trained in parallel across [`std::thread::scope`] threads. Results
//!   are bitwise identical for any thread count (each class consumes the
//!   same orders and the same rows in the same order).
//!
//! The naive reference — re-tokenizing and re-vectorizing every example on
//! every epoch, all classes interleaved on one thread — is kept as
//! [`LogReg::train_scan`]: it is the equivalence oracle for tests and the
//! "before" side of the `repro perf` baseline.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::features::{CsrMatrix, FeatureWeighting, Vocabulary};
use crate::naive_bayes::softmax;
use crate::{Classifier, Dataset, Prediction};

/// Hyper-parameters for logistic-regression training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogRegConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    /// Learning-rate decay factor `d`: epoch `e` trains at
    /// `learning_rate / (1 + d·e)`.
    pub decay: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    pub min_df: usize,
    /// RNG seed for example shuffling.
    pub seed: u64,
    /// One-vs-rest training threads; `0` means one per available core.
    /// The trained model is bitwise identical for every value.
    pub parallelism: usize,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 30,
            learning_rate: 0.5,
            decay: 0.1,
            l2: 1e-4,
            min_df: 1,
            seed: 7,
            parallelism: 0,
        }
    }
}

/// A trained one-vs-rest logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogReg {
    vocab: Vocabulary,
    labels: Vec<String>,
    /// `weights[label][feature]`.
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

/// The per-epoch example orders, drawn up front so every class replays the
/// same shuffles regardless of which thread trains it. Mirrors the
/// sequential reference exactly: one `Vec` shuffled in place per epoch,
/// snapshotted after each shuffle.
fn epoch_orders(n: usize, config: &LogRegConfig) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    (0..config.epochs)
        .map(|_| {
            order.shuffle(&mut rng);
            order.clone()
        })
        .collect()
}

/// Trains the binary classifiers for the class block `[first, first + kb)`
/// over the pre-vectorized corpus, with the block's weights interleaved as
/// `wt[feature * kb + class]`. The transposed layout turns both the dot
/// products and the updates into unit-stride loops over the block, which
/// the compiler vectorizes; the classes never interact, so the per-class
/// arithmetic — and therefore the trained model — is bitwise identical to
/// training each class alone, for any block size.
fn train_class_block(
    x: &CsrMatrix,
    label_ids: &[usize],
    orders: &[Vec<usize>],
    features: usize,
    config: &LogRegConfig,
    first: usize,
    kb: usize,
) -> Vec<(Vec<f64>, f64)> {
    let mut wt = vec![0.0f64; features * kb];
    let mut bias = vec![0.0f64; kb];
    let mut err = vec![0.0f64; kb];
    for (epoch, order) in orders.iter().enumerate() {
        let lr = config.learning_rate / (1.0 + epoch as f64 * config.decay);
        for &i in order {
            let (idx, vals) = x.row(i);
            // Accumulate the dot products from zero and add the bias last,
            // in the same association order as the sequential reference
            // (`bias + Σ`): float addition is not associative and the
            // models must stay bitwise equal.
            err.fill(0.0);
            for (&f, &xv) in idx.iter().zip(vals) {
                let row = &wt[f as usize * kb..f as usize * kb + kb];
                for (zc, wc) in err.iter_mut().zip(row) {
                    *zc += xv * *wc;
                }
            }
            let yi = label_ids[i];
            for (c, (zc, bc)) in err.iter_mut().zip(&bias).enumerate() {
                let target = if first + c == yi { 1.0 } else { 0.0 };
                *zc = sigmoid(*bc + *zc) - target;
            }
            for (bc, ec) in bias.iter_mut().zip(&err) {
                *bc -= lr * *ec;
            }
            for (&f, &xv) in idx.iter().zip(vals) {
                let row = &mut wt[f as usize * kb..f as usize * kb + kb];
                for (wc, ec) in row.iter_mut().zip(&err) {
                    *wc -= lr * (*ec * xv + config.l2 * *wc);
                }
            }
        }
    }
    (0..kb).map(|c| ((0..features).map(|f| wt[f * kb + c]).collect(), bias[c])).collect()
}

fn effective_parallelism(requested: usize, classes: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    t.min(classes).max(1)
}

impl LogReg {
    /// Trains one binary logistic regression per label (one-vs-rest),
    /// pre-vectorized and class-parallel; see the module docs for the
    /// determinism contract.
    pub fn train(data: &Dataset, config: LogRegConfig) -> Self {
        let vocab = Vocabulary::build(data.texts.iter().map(String::as_str), config.min_df);
        let labels: Vec<String> = data.label_set().into_iter().map(str::to_string).collect();
        let k = labels.len();
        let v = vocab.len();
        let x =
            vocab.vectorize_corpus(data.texts.iter().map(String::as_str), FeatureWeighting::Tfidf);
        let label_ids: Vec<usize> = data
            .labels
            .iter()
            .map(|l| labels.iter().position(|x| x == l).expect("label in set"))
            .collect();
        let orders = epoch_orders(data.len(), &config);

        let mut weights: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut bias: Vec<f64> = Vec::with_capacity(k);
        let threads = effective_parallelism(config.parallelism, k.max(1));
        if threads <= 1 || k <= 1 {
            for (w, b) in train_class_block(&x, &label_ids, &orders, v, &config, 0, k) {
                weights.push(w);
                bias.push(b);
            }
        } else {
            let chunk = k.div_ceil(threads);
            let trained: Vec<Vec<(Vec<f64>, f64)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .step_by(chunk)
                    .map(|start| {
                        let end = (start + chunk).min(k);
                        let (x, label_ids, orders, config) = (&x, &label_ids, &orders, &config);
                        s.spawn(move || {
                            train_class_block(x, label_ids, orders, v, config, start, end - start)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("training thread panicked")).collect()
            });
            for (w, b) in trained.into_iter().flatten() {
                weights.push(w);
                bias.push(b);
            }
        }
        LogReg { vocab, labels, weights, bias }
    }

    /// The pre-CSR reference trainer: single-threaded, all classes
    /// interleaved, and every example re-tokenized and re-vectorized on
    /// every epoch. Produces a bitwise-identical model to
    /// [`LogReg::train`] (a test enforces it); kept as the oracle and as
    /// the "before" side of `repro perf`.
    #[doc(hidden)]
    pub fn train_scan(data: &Dataset, config: LogRegConfig) -> Self {
        let vocab = Vocabulary::build(data.texts.iter().map(String::as_str), config.min_df);
        let labels: Vec<String> = data.label_set().into_iter().map(str::to_string).collect();
        let k = labels.len();
        let v = vocab.len();
        let label_ids: Vec<usize> = data
            .labels
            .iter()
            .map(|l| labels.iter().position(|x| x == l).expect("label in set"))
            .collect();

        let mut weights = vec![vec![0.0f64; v]; k];
        let mut bias = vec![0.0f64; k];
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + epoch as f64 * config.decay);
            for &i in &order {
                let x = vocab.tfidf_scan(&data.texts[i]);
                let yi = label_ids[i];
                for li in 0..k {
                    let target = if li == yi { 1.0 } else { 0.0 };
                    let z = bias[li] + x.iter().map(|&(f, w)| w * weights[li][f]).sum::<f64>();
                    let err = sigmoid(z) - target;
                    bias[li] -= lr * err;
                    let wl = &mut weights[li];
                    for &(f, w) in &x {
                        wl[f] -= lr * (err * w + config.l2 * wl[f]);
                    }
                }
            }
        }
        LogReg { vocab, labels, weights, bias }
    }

    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn scores(&self, text: &str) -> Vec<f64> {
        let x = self.vocab.tfidf(text);
        (0..self.labels.len())
            .map(|li| self.bias[li] + x.iter().map(|&(f, w)| w * self.weights[li][f]).sum::<f64>())
            .collect()
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogReg {
    fn predict(&self, text: &str) -> Prediction {
        self.predict_all(text)
            .into_iter()
            .next()
            .map(|(label, confidence)| Prediction { label, confidence })
            .unwrap_or(Prediction { label: String::new(), confidence: 0.0 })
    }

    fn predict_all(&self, text: &str) -> Vec<(String, f64)> {
        let probs = softmax(&self.scores(text));
        let mut out: Vec<(String, f64)> = self.labels.iter().cloned().zip(probs).collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("probabilities are finite").then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new();
        for t in [
            "show me the precautions for aspirin",
            "give me the precautions for ibuprofen",
            "tell me about precautions for tylenol",
        ] {
            d.push(t, "precautions");
        }
        for t in [
            "what drugs treat fever",
            "which drug treats psoriasis",
            "show me drugs that treat acne",
        ] {
            d.push(t, "treatment");
        }
        d
    }

    #[test]
    fn learns_separable_intents() {
        let m = LogReg::train(&data(), LogRegConfig::default());
        assert_eq!(m.predict("precautions for calcium").label, "precautions");
        assert_eq!(m.predict("what drug treats migraine").label, "treatment");
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let m1 = LogReg::train(&data(), LogRegConfig::default());
        let m2 = LogReg::train(&data(), LogRegConfig::default());
        let a = m1.predict_all("drugs that treat fever");
        let b = m2.predict_all("drugs that treat fever");
        assert_eq!(a, b);
    }

    #[test]
    fn csr_parallel_training_matches_naive_reference_bitwise() {
        let d = data();
        let reference = LogReg::train_scan(&d, LogRegConfig::default());
        for parallelism in [1, 2, 4] {
            let m = LogReg::train(&d, LogRegConfig { parallelism, ..LogRegConfig::default() });
            assert_eq!(m.weights, reference.weights, "parallelism {parallelism}");
            assert_eq!(m.bias, reference.bias, "parallelism {parallelism}");
        }
    }

    #[test]
    fn decay_config_changes_training() {
        let fast = LogReg::train(&data(), LogRegConfig { decay: 0.0, ..LogRegConfig::default() });
        let slow = LogReg::train(&data(), LogRegConfig { decay: 5.0, ..LogRegConfig::default() });
        assert_ne!(fast.weights, slow.weights, "decay must feed the LR schedule");
        // Epoch 0 runs at the undecayed rate either way; later epochs run at
        // learning_rate / (1 + decay·e).
        let e = 3usize;
        let cfg = LogRegConfig::default();
        let expect = cfg.learning_rate / (1.0 + e as f64 * cfg.decay);
        assert!((expect - 0.5 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = LogReg::train(&data(), LogRegConfig::default());
        let all = m.predict_all("precautions for x");
        let total: f64 = all.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_model_is_graceful() {
        let m = LogReg::train(&Dataset::new(), LogRegConfig::default());
        let p = m.predict("anything");
        assert!(p.label.is_empty());
    }

    #[test]
    fn sigmoid_is_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-100);
    }
}
