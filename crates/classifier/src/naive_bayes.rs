//! Multinomial Naive Bayes intent classifier with Laplace smoothing.

use serde::{Deserialize, Serialize};

use crate::features::{FeatureWeighting, Vocabulary};
use crate::{Classifier, Dataset, Prediction};

/// Hyper-parameters for Naive Bayes training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NaiveBayesConfig {
    /// Laplace smoothing constant.
    pub alpha: f64,
    /// Minimum document frequency for vocabulary features.
    pub min_df: usize,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        NaiveBayesConfig { alpha: 0.5, min_df: 1 }
    }
}

/// A trained multinomial Naive Bayes model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    vocab: Vocabulary,
    labels: Vec<String>,
    /// Log prior per label.
    log_prior: Vec<f64>,
    /// `log_likelihood[label][feature]` — log P(feature | label).
    log_likelihood: Vec<Vec<f64>>,
    /// Log-probability of an unseen feature per label (smoothing floor).
    log_unseen: Vec<f64>,
}

impl NaiveBayes {
    /// Trains on a labelled dataset.
    pub fn train(data: &Dataset, config: NaiveBayesConfig) -> Self {
        let vocab = Vocabulary::build(data.texts.iter().map(String::as_str), config.min_df);
        let labels: Vec<String> = data.label_set().into_iter().map(str::to_string).collect();
        let label_index = |l: &str| labels.iter().position(|x| x == l).expect("label in set");
        let k = labels.len();
        let v = vocab.len();

        // One batch vectorization pass; the counting loop runs over the
        // CSR matrix's contiguous slices, not over text.
        let x =
            vocab.vectorize_corpus(data.texts.iter().map(String::as_str), FeatureWeighting::Counts);
        let mut class_counts = vec![0usize; k];
        let mut feature_counts = vec![vec![0.0f64; v]; k];
        let mut total_counts = vec![0.0f64; k];
        for (row, label) in data.labels.iter().enumerate() {
            let li = label_index(label);
            class_counts[li] += 1;
            let (idx, vals) = x.row(row);
            for (&fi, &c) in idx.iter().zip(vals) {
                feature_counts[li][fi as usize] += c;
                total_counts[li] += c;
            }
        }
        let n = data.len().max(1) as f64;
        let log_prior: Vec<f64> =
            class_counts.iter().map(|&c| ((c as f64 + 1.0) / (n + k as f64)).ln()).collect();
        let mut log_likelihood = Vec::with_capacity(k);
        let mut log_unseen = Vec::with_capacity(k);
        for li in 0..k {
            let denom = total_counts[li] + config.alpha * (v as f64 + 1.0);
            log_likelihood.push(
                feature_counts[li].iter().map(|&c| ((c + config.alpha) / denom).ln()).collect(),
            );
            log_unseen.push((config.alpha / denom).ln());
        }
        NaiveBayes { vocab, labels, log_prior, log_likelihood, log_unseen }
    }

    /// The label inventory in training order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn scores(&self, text: &str) -> Vec<f64> {
        let counts = self.vocab.counts(text);
        self.labels
            .iter()
            .enumerate()
            .map(|(li, _)| {
                let mut s = self.log_prior[li];
                for &(fi, c) in &counts {
                    s += c * self.log_likelihood[li][fi];
                }
                s
            })
            .collect()
    }
}

/// Converts log scores to a softmax probability distribution.
pub(crate) fn softmax(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().cloned().fold(f64::MIN, f64::max);
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for NaiveBayes {
    fn predict(&self, text: &str) -> Prediction {
        self.predict_all(text)
            .into_iter()
            .next()
            .map(|(label, confidence)| Prediction { label, confidence })
            .unwrap_or(Prediction { label: String::new(), confidence: 0.0 })
    }

    fn predict_all(&self, text: &str) -> Vec<(String, f64)> {
        let probs = softmax(&self.scores(text));
        let mut out: Vec<(String, f64)> = self.labels.iter().cloned().zip(probs).collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("softmax probabilities are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new();
        for t in [
            "show me the precautions for aspirin",
            "give me the precautions for ibuprofen",
            "tell me about the precautions for tylenol",
            "precautions for benazepril please",
        ] {
            d.push(t, "precautions");
        }
        for t in [
            "what drugs treat fever",
            "which drug treats psoriasis",
            "show me drugs that treat acne",
            "drugs treating headache",
        ] {
            d.push(t, "treatment");
        }
        for t in [
            "dosage for tazarotene",
            "give me the dosage of aspirin",
            "what is the dose for ibuprofen",
            "dosing for amoxicillin",
        ] {
            d.push(t, "dosage");
        }
        d
    }

    #[test]
    fn learns_separable_intents() {
        let m = NaiveBayes::train(&data(), NaiveBayesConfig::default());
        assert_eq!(m.predict("precautions for calcium").label, "precautions");
        assert_eq!(m.predict("what drug treats migraine").label, "treatment");
        assert_eq!(m.predict("dosage of tylenol").label, "dosage");
    }

    #[test]
    fn confidence_is_probability() {
        let m = NaiveBayes::train(&data(), NaiveBayesConfig::default());
        let all = m.predict_all("precautions for calcium");
        let total: f64 = all.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(all[0].1 >= all[1].1);
        assert!(all[0].1 > 1.0 / 3.0);
    }

    #[test]
    fn oov_input_falls_back_to_priors() {
        let mut d = data();
        // Make precautions the dominant class.
        for i in 0..8 {
            d.push(format!("precaution variant {i}"), "precautions");
        }
        let m = NaiveBayes::train(&d, NaiveBayesConfig::default());
        let p = m.predict("zzzz qqqq xxxx");
        assert_eq!(p.label, "precautions", "prior should dominate for OOV");
        assert!(p.confidence < 0.9, "OOV prediction must not be overconfident");
    }

    #[test]
    fn empty_model_is_graceful() {
        let m = NaiveBayes::train(&Dataset::new(), NaiveBayesConfig::default());
        let p = m.predict("anything");
        assert!(p.label.is_empty());
        assert_eq!(p.confidence, 0.0);
    }

    #[test]
    fn single_class_predicts_it() {
        let mut d = Dataset::new();
        d.push("hello there", "greet");
        let m = NaiveBayes::train(&d, NaiveBayesConfig::default());
        let p = m.predict("hi");
        assert_eq!(p.label, "greet");
        assert!((p.confidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_properties() {
        assert!(softmax(&[]).is_empty());
        let p = softmax(&[0.0, 0.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        // Large magnitude inputs don't overflow.
        let p = softmax(&[-1000.0, -1001.0]);
        assert!(p[0] > p[1]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let m = NaiveBayes::train(&data(), NaiveBayesConfig::default());
        let json = serde_json::to_string(&m).unwrap();
        let m2: NaiveBayes = serde_json::from_str(&json).unwrap();
        assert_eq!(m.predict("dosage of tylenol").label, m2.predict("dosage of tylenol").label);
    }
}
