//! Integration tests spanning the whole pipeline: ontology → KB → mapping
//! → bootstrap → dialogue → agent, on the mini Figure-2 domain and on a
//! generated (ontogen) domain.

use obcs::kb::ontogen::{generate_ontology, OntogenOptions};
use obcs::kb::schema::{ColumnType, TableSchema};
use obcs::prelude::*;

#[test]
fn offline_then_online_on_fig2_domain() {
    let (onto, kb, mapping) = obcs::core::testutil::fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());

    // Every query intent has a template whose instantiation parses and
    // executes against the KB.
    let drug = onto.concept_id("Drug").unwrap();
    let ind = onto.concept_id("Indication").unwrap();
    let values = vec![(drug, "Aspirin".to_string()), (ind, "Fever".to_string())];
    let mut executed = 0;
    for intent in space.intents.iter().filter(|i| i.is_query()) {
        for labeled in space.templates_for(intent.id) {
            let required = labeled.template.required_concepts();
            if !required.iter().all(|c| values.iter().any(|(vc, _)| vc == c)) {
                continue;
            }
            let sql = labeled.template.instantiate(&values).expect("instantiation");
            kb.query(&sql).unwrap_or_else(|e| panic!("{}: {sql}: {e}", intent.name));
            executed += 1;
        }
    }
    assert!(executed >= 5, "executed {executed} templates");

    // The online loop answers a mixed conversation.
    let mut agent = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
    let reply = agent.respond("what drug treats Fever?");
    assert_eq!(reply.kind, ReplyKind::Fulfilment, "{reply:?}");
    assert!(reply.text.contains("Aspirin"));
    let reply = agent.respond("show me the risk for Ibuprofen");
    assert_eq!(reply.kind, ReplyKind::Fulfilment, "{reply:?}");
}

#[test]
fn conversation_space_round_trips_through_json() {
    let (onto, kb, mapping) = obcs::core::testutil::fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    let json = space.to_json();
    let restored = ConversationSpace::from_json(&json).expect("deserialise");
    assert_eq!(restored.inventory(), space.inventory());

    // An agent built from the restored space behaves identically.
    let mut a = ConversationAgent::new(
        onto.clone(),
        kb.clone(),
        mapping.clone(),
        space,
        AgentConfig::default(),
    );
    let mut b = ConversationAgent::new(onto, kb, mapping, restored, AgentConfig::default());
    for u in ["what drug treats Fever?", "show me the precaution for Aspirin"] {
        assert_eq!(a.respond(u).text, b.respond(u).text);
    }
}

#[test]
fn ontogen_domain_is_conversational_end_to_end() {
    // Build a KB, generate its ontology (§3 option 2), bootstrap, chat.
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("machine")
            .column("machine_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("location", ColumnType::Text)
            .primary_key("machine_id"),
    )
    .unwrap();
    kb.create_table(
        TableSchema::new("fault")
            .column("fault_id", ColumnType::Int)
            .column("machine_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .primary_key("fault_id")
            .foreign_key("machine_id", "machine", "machine_id"),
    )
    .unwrap();
    for (i, name) in ["Press A", "Lathe B", "Mill C"].iter().enumerate() {
        kb.insert("machine", vec![Value::Int(i as i64), Value::text(*name), Value::text("hall 1")])
            .unwrap();
    }
    for i in 0..5i64 {
        kb.insert(
            "fault",
            vec![Value::Int(i), Value::Int(i % 3), Value::text(format!("fault {i}"))],
        )
        .unwrap();
    }
    let onto = generate_ontology(&kb, "factory", OntogenOptions::default()).unwrap();
    let mapping = OntologyMapping::infer(&onto, &kb);
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    assert!(space.intents.iter().any(|i| i.name == "Faults of Machine"));
    let mut agent = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
    let reply = agent.respond("show me the fault for Lathe B");
    assert_eq!(reply.kind, ReplyKind::Fulfilment, "{reply:?}");
    assert!(reply.text.contains("fault 1") || reply.text.contains("fault 4"), "{}", reply.text);
}

#[test]
fn feedback_flows_into_success_rate() {
    let (onto, kb, mapping) = obcs::core::testutil::fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    let mut agent = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
    agent.respond("what drug treats Fever?");
    agent.feedback(Feedback::ThumbsUp);
    agent.respond("apfjhd");
    agent.feedback(Feedback::ThumbsDown);
    agent.respond("show me the precaution for Aspirin");
    // Equation 1: 3 interactions, 1 negative.
    let rate = agent.log.success_rate().expect("non-empty log");
    assert!((rate - 2.0 / 3.0).abs() < 1e-12);
}
