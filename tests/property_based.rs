//! Property-based tests over the core data structures and cross-crate
//! invariants.

use obcs::classifier::metrics::evaluate;
use obcs::classifier::naive_bayes::{NaiveBayes, NaiveBayesConfig};
use obcs::classifier::{Classifier, Dataset};
use obcs::kb::schema::{ColumnType, TableSchema};
use obcs::kb::value::sql_quote;
use obcs::ontology::graph::{paths_up_to, shortest_path, EdgeFilter};
use obcs::ontology::RelationKind;
use obcs::prelude::*;
use proptest::prelude::*;

/// Strategy: a random small ontology as (n concepts, edges between them).
fn ontology_strategy() -> impl Strategy<Value = Ontology> {
    (2usize..12, proptest::collection::vec((0usize..12, 0usize..12), 0..24)).prop_map(
        |(n, edges)| {
            let mut onto = Ontology::new("prop");
            let ids: Vec<_> =
                (0..n).map(|i| onto.add_concept(format!("C{i}")).expect("unique")).collect();
            for (a, b) in edges {
                let (a, b) = (a % n, b % n);
                let _ = onto.add_object_property(
                    format!("r{a}_{b}"),
                    ids[a],
                    ids[b],
                    RelationKind::Association,
                );
            }
            onto
        },
    )
}

proptest! {
    #[test]
    fn shortest_path_is_minimal(onto in ontology_strategy()) {
        let concepts = onto.concepts();
        for a in concepts.iter().take(4) {
            for b in concepts.iter().take(4) {
                if let Some(p) = shortest_path(&onto, a.id, b.id, EdgeFilter::All) {
                    // No enumerated path of the same endpoints is shorter.
                    for q in paths_up_to(&onto, a.id, b.id, 3, EdgeFilter::All) {
                        prop_assert!(q.len() >= p.len().min(3));
                    }
                    // The path really connects a to b.
                    prop_assert_eq!(p.end(&onto), b.id);
                }
            }
        }
    }

    #[test]
    fn centrality_scores_are_finite_and_complete(onto in ontology_strategy()) {
        use obcs::ontology::centrality::{centrality, CentralityMeasure};
        for measure in [
            CentralityMeasure::Degree,
            CentralityMeasure::PageRank,
            CentralityMeasure::Betweenness,
        ] {
            let scored = centrality(&onto, measure);
            prop_assert_eq!(scored.len(), onto.concept_count());
            prop_assert!(scored.iter().all(|s| s.score.is_finite()));
            // Descending order.
            for w in scored.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn sql_quote_round_trips_through_the_engine(value in "[a-zA-Z' %_-]{0,30}") {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("x", ColumnType::Text)
                .primary_key("id"),
        )
        .expect("schema");
        kb.insert("t", vec![Value::Int(1), Value::text(value.clone())]).expect("row");
        let sql = format!("SELECT x FROM t WHERE x = {}", sql_quote(&value));
        let rs = kb.query(&sql).expect("quoted literal must parse");
        prop_assert_eq!(rs.rows.len(), 1);
        prop_assert_eq!(&rs.rows[0][0], &Value::text(value));
    }

    #[test]
    fn classifier_prediction_is_a_trained_label(
        texts in proptest::collection::vec("[a-z ]{1,20}", 2..10),
        probe in "[a-z ]{0,20}",
    ) {
        let mut data = Dataset::new();
        for (i, t) in texts.iter().enumerate() {
            data.push(t.clone(), format!("label{}", i % 3));
        }
        let model = NaiveBayes::train(&data, NaiveBayesConfig::default());
        let pred = model.predict(&probe);
        prop_assert!(data.label_set().contains(&pred.label.as_str()));
        prop_assert!((0.0..=1.0).contains(&pred.confidence));
        let all = model.predict_all(&probe);
        let total: f64 = all.iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn evaluate_metrics_are_bounded(
        labels in proptest::collection::vec(0u8..4, 1..40),
        flips in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let gold: Vec<String> = labels.iter().map(|l| format!("c{l}")).collect();
        let predicted: Vec<String> = labels
            .iter()
            .zip(flips.iter().cycle())
            .map(|(l, flip)| format!("c{}", if *flip { (l + 1) % 4 } else { *l }))
            .collect();
        let report = evaluate(&gold, &predicted);
        prop_assert!((0.0..=1.0).contains(&report.accuracy));
        prop_assert!((0.0..=1.0).contains(&report.macro_f1));
        for (_, m) in &report.per_class {
            prop_assert!((0.0..=1.0).contains(&m.f1));
            prop_assert!(m.support >= 1 || m.f1 == 0.0);
        }
        // All correct → perfect scores.
        let perfect = evaluate(&gold, &gold);
        prop_assert!((perfect.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn like_patterns_never_panic(s in "[a-z%_]{0,12}", p in "[a-z%_]{0,12}") {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("t")
                .column("id", ColumnType::Int)
                .column("x", ColumnType::Text)
                .primary_key("id"),
        )
        .expect("schema");
        kb.insert("t", vec![Value::Int(1), Value::text(s)]).expect("row");
        let sql = format!("SELECT x FROM t WHERE x LIKE {}", sql_quote(&p));
        // Must not panic; row count is 0 or 1.
        let rs = kb.query(&sql).expect("parse");
        prop_assert!(rs.rows.len() <= 1);
    }
}

#[test]
fn bootstrap_never_panics_on_random_star_ontologies() {
    // Star domains of varying width: hub with k nameable satellites.
    for k in 1..8 {
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("hub")
                .column("hub_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("hub_id"),
        )
        .expect("schema");
        let mut builder = OntologyBuilder::new("star").data("Hub", &["name"]);
        for i in 0..k {
            let table = format!("sat{i}");
            kb.create_table(
                TableSchema::new(&table)
                    .column(format!("{table}_id"), ColumnType::Int)
                    .column("hub_id", ColumnType::Int)
                    .column("description", ColumnType::Text)
                    .primary_key(format!("{table}_id"))
                    .foreign_key("hub_id", "hub", "hub_id"),
            )
            .expect("schema");
            builder = builder.data(&format!("Sat{i}"), &["description"]).relation(
                &format!("has{i}"),
                "Hub",
                &format!("Sat{i}"),
            );
        }
        let onto = builder.build().expect("valid");
        kb.insert("hub", vec![Value::Int(0), Value::text("Thing")]).expect("row");
        for i in 0..k {
            kb.insert(&format!("sat{i}"), vec![Value::Int(0), Value::Int(0), Value::text("info")])
                .expect("row");
        }
        let mapping = OntologyMapping::infer(&onto, &kb);
        let space =
            bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
        // Every satellite yields a lookup intent once the hub is key.
        if !space.key_concepts.is_empty() {
            assert_eq!(space.inventory().lookup_intents, k);
        }
    }
}
