//! The paper's §6.3 transcripts replayed turn by turn against the
//! assembled Conversational MDX system, asserting the *behavioural*
//! properties each line demonstrates (slot filling, persistent context,
//! incremental modification, repair, proposal flow).

use obcs::agent::ReplyKind;
use obcs::mdx::data::MdxDataConfig;
use obcs::mdx::ConversationalMdx;

fn mdx() -> ConversationalMdx {
    ConversationalMdx::with_config(MdxDataConfig { drugs: 80, seed: 7 })
}

#[test]
fn mdx_sample_conversation_lines_01_to_20() {
    let mut m = mdx();

    // 01: opening greeting identifies the application and offers help.
    let r = m.agent.respond("hello");
    assert!(r.text.contains("Micromedex"), "{}", r.text);
    assert!(r.text.to_lowercase().contains("help"), "{}", r.text);

    // 02-03: treatment request elicits the required age group.
    let r = m.agent.respond("show me drugs that treat psoriasis");
    assert_eq!(r.kind, ReplyKind::Elicitation, "{r:?}");
    assert_eq!(r.text, "Adult or pediatric?");

    // 04-05: the slot answer completes the request across two utterances
    // (persistent context).
    let r = m.agent.respond("adult");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");

    // 06-07: incremental modification — "I mean pediatric" re-fires the
    // same request with the age group replaced.
    let r = m.agent.respond("I mean pediatric");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
    assert!(
        r.text.contains("Tazarotene") || r.text.contains("Fluocinonide"),
        "pediatric psoriasis drugs expected: {}",
        r.text
    );

    // 08-09: definition request repair (B2.5.0).
    let r = m.agent.respond("what do you mean by effective?");
    assert!(r.text.contains("beneficial change"), "{}", r.text);

    // 10-11: appreciation receipt checks for a next topic.
    let r = m.agent.respond("thanks");
    assert!(r.text.contains("Anything else?"), "{}", r.text);

    // 12-13: dosage request reuses psoriasis + pediatric from context
    // without re-eliciting.
    let r = m.agent.respond("dosage for Tazarotene");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
    assert!(r.text.contains("Tazorac"), "pinned §6.3 line 13 text: {}", r.text);
    assert!(r.text.contains("0.05% gel"), "{}", r.text);

    // 14-15: incremental drug switch keeps condition and age group.
    let r = m.agent.respond("how about for Fluocinonide?");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
    assert!(r.text.contains("0.1% cream"), "pinned §6.3 line 15 text: {}", r.text);

    // 16-17: appreciation again.
    let r = m.agent.respond("thanks");
    assert!(r.text.contains("Anything else?"));

    // 18-19: "no" with no pending proposal closes the conversation.
    let r = m.agent.respond("no");
    assert_eq!(r.kind, ReplyKind::Closing, "{r:?}");

    // 20: goodbye reciprocation.
    let r = m.agent.respond("goodbye");
    assert_eq!(r.kind, ReplyKind::Closing);
}

#[test]
fn user_480_keyword_search_flow() {
    let mut m = mdx();

    // 01-02: bare brand name resolves through the synonym to the canonical
    // drug and triggers an intent proposal.
    let r = m.agent.respond("cogentin");
    assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
    assert!(r.text.contains("Would you like to see"), "{}", r.text);
    assert!(r.text.contains("Benztropine Mesylate"), "{}", r.text);

    // 03-04: with the synonym dictionary, "side effects" resolves (the
    // paper's system initially failed here — the lesson of §6.3). Asking
    // the direct question also moves past the open proposal: switching
    // intents drops the offer, so a later yes/no cannot fire it.
    let r = m.agent.respond("What are the side effects of cogentin");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");

    // 05: with adverse effects now the active topic, re-mentioning the
    // drug is an incremental modification (§6.3), not a new search.
    let r = m.agent.respond("cogentin");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");

    // 06-08: after an abort there is no topic, so the bare brand name
    // proposes again — and rejecting that *fresh* proposal asks for a
    // modified search.
    m.agent.respond("never mind");
    let r = m.agent.respond("cogentin");
    assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
    let r = m.agent.respond("no");
    assert!(r.text.contains("modify your search"), "{}", r.text);

    // 07-08: keyword-style "cogentin adverse effects" carries dependent
    // concept + key entity and is fulfilled.
    let r = m.agent.respond("cogentin adverse effects");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
    assert!(r.found_results, "{r:?}");
}

#[test]
fn proposal_accept_flow_fulfils_proposed_intent() {
    let mut m = mdx();
    let r = m.agent.respond("Warfarin");
    assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
    let proposed = r.intent.expect("proposal names an intent");
    let r = m.agent.respond("yes");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
    assert_eq!(r.intent, Some(proposed));
}

#[test]
fn abort_and_restart_mid_elicitation() {
    let mut m = mdx();
    let r = m.agent.respond("show me drugs that treat psoriasis");
    assert_eq!(r.kind, ReplyKind::Elicitation);
    let r = m.agent.respond("never mind");
    assert!(r.text.contains("never mind"), "{}", r.text);
    // The aborted topic is gone: a fresh dosage request does not inherit
    // psoriasis.
    let r = m.agent.respond("show me drugs that treat fever");
    assert_eq!(r.kind, ReplyKind::Elicitation, "age group still required: {r:?}");
    let r = m.agent.respond("adult");
    assert_eq!(r.kind, ReplyKind::Fulfilment);
    assert!(
        r.text.contains("Aspirin")
            || r.text.contains("Ibuprofen")
            || r.text.contains("Acetaminophen"),
        "{}",
        r.text
    );
}

#[test]
fn repeat_request_replays_fulfilment() {
    let mut m = mdx();
    m.agent.respond("uses of Aspirin");
    let r = m.agent.respond("what did you say?");
    assert!(r.text.starts_with("I said:"), "{}", r.text);
}

#[test]
fn partial_name_disambiguation_round_trip() {
    let mut m = mdx();
    let r = m.agent.respond("calcium");
    assert_eq!(r.kind, ReplyKind::Disambiguation, "{r:?}");
    assert!(r.text.contains("Calcium Carbonate") && r.text.contains("Calcium Citrate"));
    // Choosing one of the candidates proceeds with that drug.
    let r = m.agent.respond("calcium citrate");
    assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
    assert!(r.text.contains("Calcium Citrate"), "{}", r.text);
}

#[test]
fn gibberish_gets_graceful_fallback() {
    let mut m = mdx();
    let r = m.agent.respond("apfjhd");
    assert_eq!(r.kind, ReplyKind::Fallback, "{r:?}");
    assert!(r.text.to_lowercase().contains("help"), "{}", r.text);
}
