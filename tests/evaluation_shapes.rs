//! Shape tests for the §7 evaluation: the reproduced statistics must show
//! the same qualitative relationships the paper reports, at reduced scale
//! so the suite stays fast.

use obcs::mdx::data::MdxDataConfig;
use obcs::mdx::ConversationalMdx;
use obcs::sim::eval::{classifier_evaluation, fig11, fig12};
use obcs::sim::traffic::{run_traffic, SimConfig};
use obcs::sim::utterance::ValuePools;

struct Evaluated {
    overall_user_rate: f64,
    macro_f1: f64,
    top_rows: Vec<obcs::sim::eval::Table5Row>,
    fig11_rows: Vec<obcs::sim::eval::SuccessRow>,
    sme_rate: f64,
    user_rate_on_sample: f64,
}

fn evaluate() -> Evaluated {
    let cfg = MdxDataConfig { drugs: 80, seed: 7 };
    let (onto, kb, mapping, space) = ConversationalMdx::bootstrap_space(cfg);
    let mut mdx = ConversationalMdx::with_config(cfg);
    let pools = ValuePools::from_kb(&kb);
    let outcome = run_traffic(
        &mut mdx.agent,
        &onto,
        &pools,
        SimConfig { interactions: 1200, seed: 13, ..SimConfig::default() },
    );
    let (report, rows) = classifier_evaluation(&space, &onto, &kb, &mapping, &outcome, 12, 13);
    let (fig11_rows, overall) = fig11(&outcome, 10);
    let (_, sme_rate, user_rate_on_sample) = fig12(&outcome, 0.10, 10, 13);
    Evaluated {
        overall_user_rate: overall,
        macro_f1: report.macro_f1,
        top_rows: rows,
        fig11_rows,
        sme_rate,
        user_rate_on_sample,
    }
}

#[test]
fn evaluation_reproduces_paper_shape() {
    let e = evaluate();

    // Table 5 shape: dosage-for-condition dominates usage; F1 is high but
    // imperfect (paper avg 0.85).
    assert_eq!(e.top_rows[0].intent, "Drug Dosage for Condition");
    assert!(e.top_rows.len() == 10);
    assert!(e.macro_f1 > 0.70 && e.macro_f1 < 0.98, "macro F1 in the paper's band: {}", e.macro_f1);
    // Usage shares decrease down the table.
    for w in e.top_rows.windows(2) {
        assert!(w[0].usage >= w[1].usage);
    }

    // Figure 11 shape: overall success high (paper 96.3%); per-intent bars
    // above 80% for the top intents.
    assert!(e.overall_user_rate > 0.92, "overall user success: {}", e.overall_user_rate);
    for row in &e.fig11_rows {
        assert!(row.success_rate > 0.80, "{row:?}");
    }

    // Figure 12 shape: the SME judgement is stricter than user feedback
    // (paper: 90.8% vs 97.9%), but not catastrophically lower.
    assert!(
        e.sme_rate < e.user_rate_on_sample,
        "SME {} vs user {}",
        e.sme_rate,
        e.user_rate_on_sample
    );
    assert!(e.sme_rate > 0.80, "SME rate: {}", e.sme_rate);
}

#[test]
fn noise_rates_degrade_success_monotonically() {
    let cfg = MdxDataConfig { drugs: 60, seed: 7 };
    let (onto, kb, _, _) = ConversationalMdx::bootstrap_space(cfg);
    let pools = ValuePools::from_kb(&kb);
    let mut rates = Vec::new();
    for misspell_rate in [0.0, 0.25] {
        let mut mdx = ConversationalMdx::with_config(cfg);
        let outcome = run_traffic(
            &mut mdx.agent,
            &onto,
            &pools,
            SimConfig { interactions: 400, seed: 5, misspell_rate, ..SimConfig::default() },
        );
        rates.push(outcome.accuracy());
    }
    assert!(rates[0] > rates[1], "heavier misspelling must hurt accuracy: {rates:?}");
}

#[test]
fn intent_mix_matches_table5_ranking() {
    // The simulated usage ranking of the top intents follows the paper's
    // Table 5 order.
    use obcs::sim::traffic::INTENT_MIX;
    let paper_order = [
        "Drug Dosage for Condition",
        "Administration of Drug",
        "IV Compatibility of Drug",
        "Drugs That Treat Condition",
        "Uses of Drug",
    ];
    for pair in paper_order.windows(2) {
        let w0 = INTENT_MIX.iter().find(|(n, _)| *n == pair[0]).unwrap().1;
        let w1 = INTENT_MIX.iter().find(|(n, _)| *n == pair[1]).unwrap().1;
        assert!(w0 >= w1, "{} should outweigh {}", pair[0], pair[1]);
    }
}
