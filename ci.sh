#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, and the conversation-space
# static-analysis pass over the committed artifacts.
#
# Advisory lints (clippy::unwrap_used, clippy::todo, clippy::dbg_macro)
# are configured at warn level through [workspace.lints] in Cargo.toml and
# show up in dev `cargo clippy --all-targets` runs; the gate here denies
# warnings on library and binary code.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
# Docs gate: every intra-doc link must resolve and every doctest-bearing
# crate must document cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> spacelint + spaceverify --deny-warnings over artifacts/*_space.json"
# Static gates over every committed conversation space (the built-in MDX
# domain and the data-driven library domain alike): the OBCS0xx artifact
# lints, then the OBCS1xx whole-space verification (dialogue-flow model
# checking, static query bind-checking, cross-artifact consistency).
for space in artifacts/*_space.json; do
  echo "    $space"
  cargo run -q --release -p obcs-lint --bin spacelint -- --deny-warnings "$space"
  cargo run -q --release -p obcs-verify --bin spaceverify -- --deny-warnings "$space"
done

echo "==> repro verify --quick"
# Combined lint+verify pass exactly as the harness runs it (flow
# exploration with the quick state cap; truncation is reported, never
# silent). Fails on any error across every committed space.
cargo run -q --release -p obcs-bench --bin repro -- verify --quick > /dev/null

echo "==> repro perf --quick --check BENCH_perf.json"
# Perf smoke: re-measures the quick profile and fails on a malformed
# baseline or any stage >5x slower than the committed BENCH_perf.json.
# Stages with a committed speedup floor (min_speedup in the baseline:
# annotate, logreg_train, cached_replay, and the 15k scale stages) also
# fail the run if the shipped implementation stops delivering at least
# that factor over its unoptimised twin.
cargo run -q --release -p obcs-bench --bin repro -- perf --quick --check BENCH_perf.json

echo "==> repro scale --quick --check BENCH_perf.json"
# Indexed-execution gate: re-measures the latency-vs-KB-size curve
# (point lookup, FK join, LIKE-prefix at 150/1.5k/15k drugs), asserts
# indexed results byte-identical to the scan twin's on every query, and
# enforces the committed 15k-point min_speedup floors (>=10x point
# lookup) plus the 5x regression ceiling against the scale_* subset of
# the baseline.
cargo run -q --release -p obcs-bench --bin repro -- scale --quick --check BENCH_perf.json

echo "==> repro serve --quick --check BENCH_perf.json"
# Serving gate: starts a real obcs-serve server on an ephemeral port,
# asserts served replies byte-identical to an in-process replay of the
# same script, drives the Table 5 intent mix from concurrent socket
# connections, and enforces the 5x regression ceiling on the serve_*
# stages (p50/p99 served-turn latency, run wall time) of the baseline.
cargo run -q --release -p obcs-bench --bin repro -- serve --quick --check BENCH_perf.json

echo "==> repro recover --quick --check BENCH_perf.json"
# Durability gate: seeds a snapshot + WAL directory, logs a mutation
# tail, kills the handle without a snapshot, tears the log tail with
# garbage bytes, and recovers — asserting the recovered KB is
# byte-identical to a live oracle (same JSON image, generation
# counters, and access paths) and that a server restarted over the
# recovered directory serves byte-identical replies. The recovery is
# timed against a JSON-snapshot twin of the same torn directory, and
# the committed min_speedup floor on recover_replay fails the run if
# the binary OBCSSNB1 path stops beating the JSON encoding it
# replaced; the 5x regression ceiling covers every recover_* stage,
# including the recover_compact swap timing.
cargo run -q --release -p obcs-bench --bin repro -- recover --quick --check BENCH_perf.json

echo "==> legacy durability fixture (JSON-era directory still recovers)"
# Backward-compatibility gate: the committed OBCSSNP1 JSON snapshot +
# OBCSWAL1 pre-epoch WAL under crates/kb/tests/data/legacy_durability/
# must keep recovering byte-identically to its oracle. Format drift
# that would strand a real pre-binary directory fails here, not on a
# user's restart.
cargo test -q -p obcs-kb --test legacy_fixture

echo "==> protocol spec round-trip (docs/PROTOCOL.md vs serde types)"
# Doc-rot gate: every fenced json example in docs/PROTOCOL.md must parse
# as a protocol message and survive an encode/decode round trip.
cargo test -q -p obcs-serve --test protocol_doc > /dev/null

echo "==> spacelint + spaceverify over a large-world export"
# Bind-checks the static-analysis chain at scale: export a 1000-drug
# world (auto-indexed KB included) to target/ and run the same OBCS0xx /
# OBCS1xx gates the committed artifacts get. Guards against the lints or
# the verifier degrading on large KBs.
cargo run -q --release -p obcs-bench --bin repro -- export --drugs 1000 \
  --dir target/large_world > /dev/null
cargo run -q --release -p obcs-lint --bin spacelint -- --deny-warnings \
  target/large_world/mdx_space.json
cargo run -q --release -p obcs-verify --bin spaceverify -- --deny-warnings \
  target/large_world/mdx_space.json

echo "==> repro trace --quick"
# Observability smoke: traced replay of the quick profile; validates the
# emitted JSONL trace and fails on a malformed line (the trace itself is
# deterministic — tick timing — so this also exercises the merge path).
cargo run -q --release -p obcs-bench --bin repro -- trace --quick \
  --out target/trace_quick.jsonl > /dev/null

echo "==> repro chaos --quick"
# Robustness smoke: replays the quick profile under the seeded fault plan
# and fails on a panic, a nondeterministic trace/record sequence across
# parallelism, a caches-off replay that diverges from the cached one
# (DESIGN.md §12: caching must be observationally invisible), or any
# injected fault that was neither recovered by a retry nor surfaced as
# a degraded reply.
cargo run -q --release -p obcs-bench --bin repro -- chaos --quick > /dev/null

echo "CI gate passed."
