#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, and the conversation-space
# static-analysis pass over the committed artifacts.
#
# Advisory lints (clippy::unwrap_used, clippy::todo, clippy::dbg_macro)
# are configured at warn level through [workspace.lints] in Cargo.toml and
# show up in dev `cargo clippy --all-targets` runs; the gate here denies
# warnings on library and binary code.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> spacelint --deny-warnings artifacts/mdx_space.json"
cargo run -q --release -p obcs-lint --bin spacelint -- --deny-warnings artifacts/mdx_space.json

echo "==> repro perf --quick --check BENCH_perf.json"
# Perf smoke: re-measures the quick profile and fails on a malformed
# baseline or any stage >5x slower than the committed BENCH_perf.json.
cargo run -q --release -p obcs-bench --bin repro -- perf --quick --check BENCH_perf.json

echo "CI gate passed."
