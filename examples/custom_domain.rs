//! Domain-agnosticism demo (the paper's central claim): point the very
//! same pipeline at a *different* knowledge base — here a library domain —
//! and get a working conversation agent without writing any
//! conversation-design artifacts by hand.
//!
//! This example also exercises the fully data-driven ontology-creation
//! path (paper §3 option 2): the ontology is *generated* from the schema
//! and instance data, not hand-built.
//!
//! ```text
//! cargo run --example custom_domain
//! ```

use obcs::kb::ontogen::{generate_ontology, OntogenOptions};
use obcs::kb::schema::{ColumnType, TableSchema};
use obcs::prelude::*;

fn build_library_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("author")
            .column("author_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("country", ColumnType::Text)
            .primary_key("author_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("genre")
            .column("genre_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("genre_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("book")
            .column("book_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("year", ColumnType::Int)
            .column("author_id", ColumnType::Int)
            .column("genre_id", ColumnType::Int)
            .primary_key("book_id")
            .foreign_key("author_id", "author", "author_id")
            .foreign_key("genre_id", "genre", "genre_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("review")
            .column("review_id", ColumnType::Int)
            .column("book_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .column("rating", ColumnType::Int)
            .primary_key("review_id")
            .foreign_key("book_id", "book", "book_id"),
    )
    .expect("schema");

    let authors = [
        ("Ursula K. Le Guin", "United States"),
        ("Stanislaw Lem", "Poland"),
        ("Octavia Butler", "United States"),
        ("Jorge Luis Borges", "Argentina"),
    ];
    for (i, (name, country)) in authors.iter().enumerate() {
        kb.insert("author", vec![Value::Int(i as i64), Value::text(*name), Value::text(*country)])
            .expect("author row");
    }
    for (i, g) in ["science fiction", "fantasy", "short stories"].iter().enumerate() {
        kb.insert("genre", vec![Value::Int(i as i64), Value::text(*g)]).expect("genre row");
    }
    let books = [
        ("The Dispossessed", 1974, 0, 0),
        ("The Left Hand of Darkness", 1969, 0, 0),
        ("Solaris", 1961, 1, 0),
        ("Kindred", 1979, 2, 0),
        ("Ficciones", 1944, 3, 2),
        ("A Wizard of Earthsea", 1968, 0, 1),
    ];
    for (i, (title, year, author, genre)) in books.iter().enumerate() {
        kb.insert(
            "book",
            vec![
                Value::Int(i as i64),
                Value::text(*title),
                Value::Int(*year),
                Value::Int(*author),
                Value::Int(*genre),
            ],
        )
        .expect("book row");
    }
    for (i, (book, text, rating)) in [
        (0, "a thoughtful study of two worlds", 5),
        (2, "claustrophobic and brilliant", 5),
        (3, "devastating and essential", 5),
        (5, "a quiet, perfect fantasy", 4),
    ]
    .iter()
    .enumerate()
    {
        kb.insert(
            "review",
            vec![Value::Int(i as i64), Value::Int(*book), Value::text(*text), Value::Int(*rating)],
        )
        .expect("review row");
    }
    kb
}

fn main() {
    let kb = build_library_kb();
    // §3 option 2: generate the domain ontology from schema + data.
    let onto =
        generate_ontology(&kb, "library", OntogenOptions::default()).expect("ontology generation");
    println!(
        "generated ontology: {} concepts, {} properties, {} relationships",
        onto.concept_count(),
        onto.data_property_count(),
        onto.object_property_count()
    );
    for op in onto.object_properties() {
        println!(
            "  {} -[{}]-> {}",
            onto.concept_name(op.source),
            op.name,
            onto.concept_name(op.target)
        );
    }

    let mapping = OntologyMapping::infer(&onto, &kb);
    let sme = SmeFeedback::new().synonym("Book", &["novel", "title"]);
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
    println!("\nbootstrapped intents:");
    for intent in &space.intents {
        println!("  {}", intent.name);
    }

    let mut agent = ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { name: "Librarian".into(), ..AgentConfig::default() },
    );
    println!();
    for utterance in [
        "hello",
        "what book is by Octavia Butler?",
        "show me the review for Solaris",
        "books by Ursula K. Le Guin",
        "goodbye",
    ] {
        let reply = agent.respond(utterance);
        println!("U: {utterance}");
        println!("A: {}", reply.text.replace('\n', " | "));
    }
}
