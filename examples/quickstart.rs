//! Quickstart: bootstrap a conversation space from a small medical
//! ontology and hold a short conversation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use obcs::prelude::*;

fn main() {
    // A miniature version of the paper's Figure-2 world: Drug/Indication
    // hubs, dependent concepts (Precaution, Dosage, Risk = ContraIndication
    // ∪ BlackBoxWarning, DrugInteraction hierarchy), and a populated KB.
    let (onto, kb, mapping) = obcs::core::testutil::fig2_fixture();
    println!(
        "ontology `{}`: {} concepts, {} properties, {} relationships",
        onto.name,
        onto.concept_count(),
        onto.data_property_count(),
        onto.object_property_count()
    );

    // Offline bootstrapping (paper §4): key concepts → query patterns →
    // intents → training examples → entities → query templates.
    let drug = onto.concept_id("Drug").expect("Drug concept");
    let sme = SmeFeedback::new().synonym("Drug", &["medicine", "medication"]).entity_only(drug);
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
    let inv = space.inventory();
    println!(
        "bootstrapped: {} intents ({} lookup, {} relationship), {} entities, {} training examples",
        inv.intents_total,
        inv.lookup_intents,
        inv.relationship_intents,
        inv.entities,
        inv.training_examples
    );

    // Online conversation (paper §2, Fig. 1b).
    let mut agent = ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { name: "DemoBot".into(), ..AgentConfig::default() },
    );
    for utterance in [
        "hello",
        "what drug treats Fever?",
        "show me the precaution",
        "Aspirin",
        "what did you say?",
        "thanks",
        "goodbye",
    ] {
        let reply = agent.respond(utterance);
        println!("U: {utterance}");
        println!("A: {}   [{:?}]", reply.text.replace('\n', " | "), reply.kind);
    }
    println!(
        "\nsession success rate (Eq. 1): {:.1}%",
        agent.log.success_rate().unwrap_or(1.0) * 100.0
    );
}
