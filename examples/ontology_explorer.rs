//! Ontology explorer: inspects the MDX domain ontology — centrality
//! ranking, key-concept identification, dependent concepts, query
//! patterns — and exports the graph as Graphviz DOT.
//!
//! ```text
//! cargo run --example ontology_explorer              # analysis to stdout
//! cargo run --example ontology_explorer -- --dot     # DOT graph to stdout
//! cargo run --example ontology_explorer -- --turtle  # OWL/Turtle to stdout
//! ```

use obcs::core::concepts::{
    identify_dependent_concepts, identify_key_concepts, DependentSemantics, KeyConceptConfig,
};
use obcs::kb::stats::CategoricalPolicy;
use obcs::mdx::data::{build_mdx_kb, MdxDataConfig};
use obcs::mdx::ontology::build_mdx_ontology;
use obcs::nlq::OntologyMapping;
use obcs::ontology::centrality::{centrality, CentralityMeasure};
use obcs::ontology::dot::to_dot;
use obcs::ontology::turtle::{from_turtle, to_turtle};
use obcs::ontology::validate;

fn main() {
    let onto = build_mdx_ontology();
    if std::env::args().any(|a| a == "--dot") {
        print!("{}", to_dot(&onto));
        return;
    }
    if std::env::args().any(|a| a == "--turtle") {
        let ttl = to_turtle(&onto);
        // Round-trip sanity before printing: the export must re-import.
        let back = from_turtle(&ttl).expect("turtle round-trip");
        assert_eq!(back.concept_count(), onto.concept_count());
        print!("{ttl}");
        return;
    }

    println!(
        "MDX ontology: {} concepts, {} data properties, {} relationships",
        onto.concept_count(),
        onto.data_property_count(),
        onto.object_property_count()
    );
    let issues = validate(&onto);
    println!("validation issues: {}", issues.len());

    println!("\ntop 10 concepts by degree centrality:");
    for s in centrality(&onto, CentralityMeasure::Degree).iter().take(10) {
        println!("  {:<24} {:.2}", onto.concept_name(s.concept), s.score);
    }

    let kb = build_mdx_kb(MdxDataConfig { drugs: 80, seed: 7 });
    let mapping = OntologyMapping::infer(&onto, &kb);
    let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
    println!("\nkey concepts (centrality + segregation + nameability):");
    for &k in &keys {
        println!("  {}", onto.concept_name(k));
    }

    let deps =
        identify_dependent_concepts(&onto, &kb, &mapping, &keys, CategoricalPolicy::default());
    println!("\ndependent concepts:");
    for d in &deps {
        let semantics = match &d.semantics {
            DependentSemantics::Plain => String::new(),
            DependentSemantics::Union(m) => format!(
                "  [union of {}]",
                m.iter().map(|&c| onto.concept_name(c)).collect::<Vec<_>>().join(", ")
            ),
            DependentSemantics::Inheritance(c) => format!(
                "  [parent of {}]",
                c.iter().map(|&c| onto.concept_name(c)).collect::<Vec<_>>().join(", ")
            ),
        };
        println!(
            "  {:<24} (describes {}){semantics}",
            onto.concept_name(d.concept),
            onto.concept_name(d.of_key)
        );
    }
}
