//! Usage-statistics workflow (paper §7.2): run simulated traffic against
//! Conversational MDX, persist the interaction log as JSON Lines, reload
//! it, and print the per-intent usage and success-rate report the paper's
//! 7-month study is built on.
//!
//! ```text
//! cargo run --release --example usage_stats [-- <interactions>]
//! ```

use obcs::agent::InteractionLog;
use obcs::mdx::data::MdxDataConfig;
use obcs::mdx::ConversationalMdx;
use obcs::sim::traffic::{run_traffic, SimConfig};
use obcs::sim::utterance::ValuePools;

fn main() {
    let interactions: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let cfg = MdxDataConfig { drugs: 100, seed: 20200614 };
    println!("building Conversational MDX and simulating {interactions} interactions…");
    let (onto, kb, _, space) = ConversationalMdx::bootstrap_space(cfg);
    let pools = ValuePools::from_kb(&kb);
    let mut mdx = ConversationalMdx::with_config(cfg);
    run_traffic(&mut mdx.agent, &onto, &pools, SimConfig { interactions, ..SimConfig::default() });

    // Persist and reload the log (the accumulation format of a long-running
    // deployment).
    let path = std::env::temp_dir().join("obcs_usage.jsonl");
    std::fs::write(&path, mdx.agent.log.to_jsonl()).expect("write log");
    let text = std::fs::read_to_string(&path).expect("read log");
    let log = InteractionLog::from_jsonl(&text).expect("parse log");
    println!("log: {} records persisted to {} and reloaded\n", log.len(), path.display());

    println!("{:<38} {:>8} {:>10}", "intent", "usage", "success");
    let total = log.len() as f64;
    for (intent_id, count) in log.usage_by_intent().into_iter().take(12) {
        let name = space
            .intent(intent_id)
            .map(|i| i.name.clone())
            .unwrap_or_else(|| format!("{intent_id:?}"));
        let rate = log.success_rate_for(intent_id).unwrap_or(1.0);
        println!("{name:<38} {:>7.1}% {:>9.1}%", count as f64 / total * 100.0, rate * 100.0);
    }
    println!(
        "\noverall success rate (Eq. 1): {:.1}%  (paper: 96.3%)",
        log.success_rate().unwrap_or(1.0) * 100.0
    );
}
