//! Serve Conversational MDX over a TCP socket — the README's `nc`
//! example, runnable. Boots the paper's §6 use case (150 synthetic
//! drugs), starts an `obcs-serve` server, and prints the address; speak
//! newline-delimited JSON to it (`docs/PROTOCOL.md`):
//!
//! ```text
//! cargo run --release --example serve_mdx            # 127.0.0.1:7878
//! cargo run --release --example serve_mdx -- 0       # ephemeral port
//!
//! printf '%s\n' '{"Turn":{"session":"s1","utterance":"what is the dosage of Tazarotene?"}}' \
//!   | nc 127.0.0.1 7878
//! ```

use obcs::mdx::ConversationalMdx;
use obcs::serve::{ServeConfig, Server};

fn main() {
    let port = std::env::args().nth(1).unwrap_or_else(|| "7878".to_string());
    println!("building Conversational MDX (150 synthetic drugs)…");
    let mdx = ConversationalMdx::new(20200614);

    let config = ServeConfig { addr: format!("127.0.0.1:{port}"), ..ServeConfig::default() };
    let server = Server::start(mdx.agent, config).expect("bind serve address");
    println!("serving on {} — one JSON message per line, e.g.:", server.addr());
    println!(r#"  {{"Hello":{{"client":"nc"}}}}"#);
    println!(r#"  {{"Turn":{{"session":"s1","utterance":"show me drugs that treat psoriasis"}}}}"#);
    println!(r#"  "Stats""#);
    println!("press ctrl-c to stop.");

    // The accept loop and connection handlers run on their own threads;
    // keep the process alive until the operator kills it.
    loop {
        std::thread::park();
    }
}
