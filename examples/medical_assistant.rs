//! Conversational MDX: the paper's §6 use case end to end — the synthetic
//! Micromedex-scale medical KB, the bootstrapped conversation space, and
//! the transcripts of §6.3 replayed. Pass `--interactive` to chat with the
//! agent on stdin.
//!
//! ```text
//! cargo run --release --example medical_assistant
//! cargo run --release --example medical_assistant -- --interactive
//! ```

use std::io::{BufRead, Write};

use obcs::agent::ReplyKind;
use obcs::mdx::ConversationalMdx;

fn main() {
    let interactive = std::env::args().any(|a| a == "--interactive");
    println!("building Conversational MDX (150 synthetic drugs)…");
    let mut mdx = ConversationalMdx::new(20200614);
    let inv = mdx.agent.space().inventory();
    println!(
        "ready: {} intents, {} entities, {} training examples\n",
        inv.intents_total, inv.entities, inv.training_examples
    );

    if interactive {
        repl(&mut mdx);
        return;
    }

    // Replay the paper's §6.3 sample conversation.
    let script = [
        "hello",
        "show me drugs that treat psoriasis",
        "adult",
        "I mean pediatric",
        "what do you mean by effective?",
        "thanks",
        "dosage for Tazarotene",
        "how about for Fluocinonide?",
        "thanks",
        "no",
        "goodbye",
    ];
    for utterance in script {
        let reply = mdx.agent.respond(utterance);
        println!("U: {utterance}");
        for line in reply.text.lines().take(3) {
            println!("A: {line}");
        }
        if reply.kind == ReplyKind::Closing {
            break;
        }
        println!();
    }
}

fn repl(mdx: &mut ConversationalMdx) {
    println!("type your question (\"goodbye\" to quit):");
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let reply = mdx.agent.respond(line.trim());
        println!("{}", reply.text);
        if reply.kind == ReplyKind::Closing {
            break;
        }
    }
}
